"""GEMM dispatch pipeline equivalence and cost-accounting tests.

The contract (DESIGN.md section 8), asserted with **exact** equality
(``assert_array_equal`` / ``==``, never ``allclose``):

- the instrument-chain dispatch is bit-identical to the pre-refactor seed
  GEMM route — same outputs, same injector RNG streams and statistics,
  same protector inspection statistics — on every route (bypass,
  materialized, ±injector, ±protector, batched operands, wraparound and
  saturating accumulators, BLAS and integer kernels);
- attaching a :class:`CostInstrument` is observationally inert: logits,
  tokens, RNG streams, and ABFT statistics are unchanged across
  prefill+decode, single+batched inputs, replay on/off, ±ABFT;
- cost accounting itself is route-independent (full vs. replayed forwards
  charge identical cycles, per site) and agrees with the systolic-array
  functional simulator's cycle reports (the ``bench_fig7`` reference
  numbers) and with the brute-force tile walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.protectors import ClassicalABFT
from repro.dispatch import CostInstrument, CostSpec
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, GemmSite, SiteFilter, Stage
from repro.models.quantized import GemmExecutor, QuantizedWeight
from repro.models.replay import ReplaySession, TraceStore
from repro.quant.gemm import INT32_MAX, gemm_int32
from repro.systolic.array import GemmRunReport, SystolicArray
from repro.systolic.dataflow import IS, OS, WS, tile_latency_cycles
from repro.systolic.tiling import iter_tiles, plan_cycles, tiling_plan

SITE = GemmSite(layer=0, component=Component.Q, stage=Stage.PREFILL)
SITE_O = GemmSite(layer=1, component=Component.O, stage=Stage.PREFILL)


# --------------------------------------------------------------------------
# The pre-refactor (seed) GEMM route, reproduced verbatim: quantize, the
# fast-path decision, inject, protect, dequantize — inlined exactly as
# ``GemmExecutor._execute``/``_protect`` implemented it before the
# dispatch-pipeline refactor decomposed them onto instruments.
# --------------------------------------------------------------------------
def _seed_protect(ex, a_q, b_q, clean, acc, site, macs):
    from repro.abft.checksums import checksum_report, slice_inspections

    report = checksum_report(a_q, b_q, acc)
    if report.diffs.ndim <= 1:
        for _, sub, sub_macs in slice_inspections(report.diffs, macs):
            if ex.protector.inspect(sub, site, sub_macs):
                return clean
        return acc
    n_slices = int(np.prod(report.diffs.shape[:-1]))
    acc_slices = acc.reshape(n_slices, *acc.shape[-2:])
    clean_slices = clean.reshape(n_slices, *clean.shape[-2:])
    out = acc_slices
    for s, sub, slice_macs in slice_inspections(report.diffs, macs):
        if ex.protector.inspect(sub, site, slice_macs):
            if out is acc_slices:
                out = acc_slices.copy()
            out[s] = clean_slices[s]
    return out.reshape(acc.shape)


def _seed_execute(ex, a_q, b_q, out_scale, site, b_f64=None):
    rows = int(np.prod(a_q.shape[:-1]))
    macs = rows * a_q.shape[-1] * b_q.shape[-1]
    ex.total_macs += macs
    key = site.component.value
    ex.macs_by_component[key] = ex.macs_by_component.get(key, 0) + macs
    blas = ex.backend.name != "numpy-int"  # the seed's fast_gemm flag
    no_overflow = (
        blas
        and a_q.dtype == np.int8
        and b_q.dtype == np.int8
        and a_q.shape[-1] * 127 * 127 <= INT32_MAX
    )
    targeted = ex.injector is not None and ex.injector.targets(site)
    if no_overflow and not targeted and ex.protector is None:
        if ex.injector is not None:
            ex.injector.register_untargeted(site)
        if b_f64 is None:
            b_f64 = b_q.astype(np.float64)
        return (a_q.astype(np.float64) @ b_f64) * out_scale
    clean = gemm_int32(a_q, b_q, wraparound=ex.wraparound, blas=blas, b_f64=b_f64)
    acc = clean
    if ex.injector is not None:
        acc = ex.injector.corrupt(clean, site)
    if ex.protector is not None:
        acc = _seed_protect(ex, a_q, b_q, clean, acc, site, macs)
    return acc.astype(np.float64) * out_scale


def _seed_linear(ex, x, weight, site):
    a_q, a_params = ex._quantize(x, site, "a")
    out_scale = a_params.scale * weight.params.scale
    return _seed_execute(ex, a_q, weight.q, out_scale, site, b_f64=weight.q_f64)


def _seed_matmul(ex, a, b, site):
    a_q, a_params = ex._quantize(a, site, "a")
    b_q, b_params = ex._quantize(b, site, "b")
    out_scale = np.asarray(a_params.scale * b_params.scale)
    return _seed_execute(ex, a_q, b_q, out_scale, site)


def _operands(rng, batched: bool):
    weight = QuantizedWeight.from_float(rng.normal(size=(12, 10)))
    if batched:
        x = rng.normal(size=(2, 3, 7, 12))
        a = rng.normal(size=(2, 3, 7, 12))
        b = rng.normal(size=(2, 3, 12, 5))
    else:
        x = rng.normal(size=(7, 12))
        a = rng.normal(size=(7, 12))
        b = rng.normal(size=(12, 5))
    return weight, x, a, b


def _run_route(route, ex, weight, x, a, b, injector, protector):
    """One linear + one matmul under a given instrument configuration."""
    ex.attach(injector, protector)
    try:
        if route == "seed":
            return _seed_linear(ex, x, weight, SITE), _seed_matmul(ex, a, b, SITE_O)
        return ex.linear(x, weight, SITE), ex.matmul(a, b, SITE_O)
    finally:
        ex.attach(None, None)


class TestSeedRouteEquivalence:
    """dispatch == the seed inline route, bit for bit, on every branch."""

    @pytest.mark.parametrize("batched", [False, True])
    @pytest.mark.parametrize("backend", ["numpy-f64", "numpy-int"])
    @pytest.mark.parametrize("wraparound", [True, False])
    @pytest.mark.parametrize(
        "with_injector,with_protector",
        [(False, False), (True, False), (False, True), (True, True)],
    )
    def test_bit_identical_outputs_and_streams(
        self, batched, backend, wraparound, with_injector, with_protector
    ):
        rng = np.random.default_rng(0)
        weight, x, a, b = _operands(rng, batched)
        outputs, injectors, protectors, executors = [], [], [], []
        for route in ("seed", "dispatch"):
            ex = GemmExecutor(wraparound=wraparound, backend=backend)
            injector = (
                ErrorInjector(BitFlipModel(0.02), SiteFilter.only(layers=[1]), seed=9)
                if with_injector
                else None
            )
            protector = ClassicalABFT() if with_protector else None
            outputs.append(_run_route(route, ex, weight, x, a, b, injector, protector))
            injectors.append(injector)
            protectors.append(protector)
            executors.append(ex)
        for seed_out, dispatch_out in zip(*outputs):
            np.testing.assert_array_equal(seed_out, dispatch_out)
        assert executors[0].total_macs == executors[1].total_macs
        assert executors[0].macs_by_component == executors[1].macs_by_component
        if with_injector:
            seed_inj, disp_inj = injectors
            assert seed_inj._call_index == disp_inj._call_index
            assert seed_inj.stats.gemm_calls == disp_inj.stats.gemm_calls
            assert seed_inj.stats.targeted_calls == disp_inj.stats.targeted_calls
            assert seed_inj.stats.injected_errors == disp_inj.stats.injected_errors
            assert seed_inj.stats.per_site_errors == disp_inj.stats.per_site_errors
        if with_protector:
            seed_p, disp_p = protectors
            assert seed_p.stats.inspected == disp_p.stats.inspected
            assert seed_p.stats.detected == disp_p.stats.detected
            assert seed_p.stats.recovered == disp_p.stats.recovered
            assert seed_p.stats.recovered_macs == disp_p.stats.recovered_macs

    def test_fast_gemm_deprecation_shim(self):
        """The old flag still works — reading maps off the backend, writing
        warns and swaps between the two numpy backends."""
        ex = GemmExecutor(backend="numpy-f64")
        assert ex.fast_gemm is True and ex.backend.name == "numpy-f64"
        with pytest.warns(DeprecationWarning):
            ex.fast_gemm = False
        assert ex.backend.name == "numpy-int" and ex.fast_gemm is False
        with pytest.warns(DeprecationWarning):
            ex.fast_gemm = True
        assert ex.backend.name == "numpy-f64" and ex.fast_gemm is True

    def test_untargeted_bypass_advances_rng_identically(self):
        """A later targeted site draws the same stream whichever route the
        earlier untargeted calls took."""
        rng = np.random.default_rng(3)
        weight, x, a, b = _operands(rng, batched=False)
        hits = []
        for route in ("seed", "dispatch"):
            ex = GemmExecutor()
            injector = ErrorInjector(BitFlipModel(0.9), SiteFilter.only(layers=[1]), seed=4)
            _run_route(route, ex, weight, x, a, b, injector, None)  # layer 0 + 1
            hits.append(injector.stats.per_site_errors)
        assert hits[0] == hits[1] and hits[0]  # targeted site did corrupt

    def test_call_log_records_identically(self):
        rng = np.random.default_rng(5)
        weight, x, a, b = _operands(rng, batched=True)
        ex = GemmExecutor()
        ex.call_log = log = []
        ex.linear(x, weight, SITE)
        ex.matmul(a, b, SITE_O)
        ex.call_log = None
        assert [(c.site, c.macs, c.shape) for c in log] == [
            (SITE, 2 * 3 * 7 * 12 * 10, (2, 3, 7, 10)),
            (SITE_O, 2 * 3 * 7 * 12 * 5, (2, 3, 7, 5)),
        ]


class TestTilingPlan:
    """Memoized plans == the brute-force tile walk, shape for shape."""

    SHAPES = [(8, 8, 8, 4), (10, 7, 9, 4), (1, 4096, 1, 32), (96, 96, 96, 32),
              (5, 3, 2, 7), (13, 17, 11, 5)]

    @pytest.mark.parametrize("m,k,n,size", SHAPES)
    @pytest.mark.parametrize("dataflow", [WS, OS, IS])
    @pytest.mark.parametrize("with_checksum", [False, True])
    def test_plan_cycles_equal_tile_walk(self, m, k, n, size, dataflow, with_checksum):
        tiles = list(iter_tiles(m, k, n, size))
        walked = sum(
            tile_latency_cycles(dataflow, t.m, t.k, t.n, with_checksum) for t in tiles
        )
        plan = tiling_plan(m, k, n, size)
        assert plan.tiles == len(tiles)
        assert plan.macs == sum(t.macs for t in tiles) == m * k * n
        assert plan.cycles(dataflow, with_checksum) == walked
        assert plan_cycles(m, k, n, size, dataflow, with_checksum) == walked

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            tiling_plan(0, 4, 4, 2)
        with pytest.raises(ValueError):
            plan_cycles(4, 4, 4, 0, WS)


class TestPerSiteReport:
    """GemmRunReport aggregates per GemmSite (the layerwise-breakdown fix)."""

    def test_charge_and_merge_keep_site_breakdown(self):
        first = GemmRunReport()
        first.charge(SITE, tiles=2, compute_cycles=10, macs=100)
        first.charge(SITE_O, tiles=1, compute_cycles=7, macs=50, recovered_macs=50,
                     recovered_tiles=1, recovery_cycles=7)
        second = GemmRunReport()
        second.charge(SITE, tiles=4, compute_cycles=20, macs=200)
        first.merge(second)
        assert first.tiles == 7 and first.compute_cycles == 37 and first.macs == 350
        assert first.recovered_macs == 50 and first.total_cycles == 44
        assert set(first.by_site) == {SITE, SITE_O}
        assert first.by_site[SITE].tiles == 6
        assert first.by_site[SITE].compute_cycles == 30
        assert first.by_site[SITE_O].recovered_macs == 50
        by_component = first.component_totals()
        assert by_component["Q"].macs == 300 and by_component["O"].macs == 50

    def test_systolic_gemm_charges_its_site(self, rng):
        array = SystolicArray(4, WS)
        a = rng.integers(-50, 50, size=(9, 11)).astype(np.int8)
        b = rng.integers(-50, 50, size=(11, 6)).astype(np.int8)
        out, report = array.gemm(a, b, site=SITE_O)
        np.testing.assert_array_equal(out, gemm_int32(a, b))
        assert set(report.by_site) == {SITE_O}
        assert report.by_site[SITE_O].compute_cycles == report.compute_cycles
        assert report.compute_cycles == plan_cycles(9, 11, 6, 4, WS, False)


class TestCostAgainstSystolicReference:
    """CostInstrument cycles == SystolicArray.gemm report cycles (the
    bench_fig7 reference numbers) on the same executed shapes."""

    @pytest.mark.parametrize("dataflow", [WS, OS])
    @pytest.mark.parametrize("protect", [False, True])
    def test_linear_costs_match_array_report(self, dataflow, protect):
        rng = np.random.default_rng(11)
        weight = QuantizedWeight.from_float(rng.normal(size=(12, 10)))
        x = rng.normal(size=(9, 12))
        ex = GemmExecutor()
        cost = CostInstrument(size=4, dataflow=dataflow)
        ex.cost = cost
        protector = ClassicalABFT() if protect else None
        ex.attach(None, protector)
        try:
            ex.linear(x, weight, SITE)
        finally:
            ex.attach(None, None)
            ex.cost = None
        a_q, _ = ex._quantize(x, SITE, "a")
        array = SystolicArray(4, dataflow)
        _, reference = array.gemm(
            a_q, weight.q, protector=ClassicalABFT() if protect else None, site=SITE
        )
        assert cost.report.compute_cycles == reference.compute_cycles
        assert cost.report.tiles == reference.tiles
        assert cost.report.macs == reference.macs
        assert cost.report.recovery_cycles == reference.recovery_cycles == 0

    def test_batched_call_charges_per_slice(self):
        rng = np.random.default_rng(12)
        ex = GemmExecutor()
        cost = CostInstrument(size=4, dataflow=WS)
        ex.cost = cost
        try:
            ex.matmul(rng.normal(size=(2, 3, 7, 12)), rng.normal(size=(2, 3, 12, 5)), SITE)
        finally:
            ex.cost = None
        plan = tiling_plan(7, 12, 5, 4)
        assert cost.report.tiles == 6 * plan.tiles
        assert cost.report.compute_cycles == 6 * plan.cycles(WS, False)
        assert cost.report.macs == 6 * 7 * 12 * 5


@pytest.fixture()
def session():
    """A private trace store so tests never see each other's traces."""
    return ReplaySession("dispatch-test", store=TraceStore())


def _tokens(model, n=3, length=20, stride=3):
    vocab = model.config.vocab_size
    return np.stack([(np.arange(length) * (1 + i * stride)) % vocab for i in range(n)])


FILTERS = [
    SiteFilter.only(layers=[1]),
    SiteFilter.only(components=[Component.O]),
    SiteFilter.everywhere(),
]


@pytest.mark.parametrize("model_fixture", ["opt_quant", "llama_quant"])
class TestCostInstrumentInertness:
    """Attaching a CostInstrument never perturbs the measurement."""

    @pytest.mark.parametrize("protect", [False, True])
    def test_forward_full_unchanged(self, model_fixture, protect, request, session):
        model = request.getfixturevalue(model_fixture)
        tokens = _tokens(model)
        with model.replay_into(session):
            model.forward_full(tokens)  # record the clean trace once
        for flt in FILTERS:
            for use_replay in (False, True):
                outputs, injectors, protectors = [], [], []
                for with_cost in (False, True):
                    injector = ErrorInjector(BitFlipModel(2e-3), flt, seed=7)
                    protector = ClassicalABFT() if protect else None
                    model.attach(injector, protector)
                    model.executor.cost = (
                        CostInstrument(size=8) if with_cost else None
                    )
                    try:
                        with model.replay_into(session if use_replay else None):
                            outputs.append(model.forward_full(tokens))
                    finally:
                        model.attach(None, None)
                        model.executor.cost = None
                    injectors.append(injector)
                    protectors.append(protector)
                np.testing.assert_array_equal(outputs[0], outputs[1])
                assert injectors[0].stats.gemm_calls == injectors[1].stats.gemm_calls
                assert (
                    injectors[0].stats.per_site_errors
                    == injectors[1].stats.per_site_errors
                )
                if protect:
                    assert (
                        protectors[0].stats.inspected == protectors[1].stats.inspected
                    )
                    assert (
                        protectors[0].stats.recovered_macs
                        == protectors[1].stats.recovered_macs
                    )

    def test_generation_unchanged_and_costs_route_invariant(
        self, model_fixture, request, session
    ):
        """Prefill+decode: tokens are bit-identical with cost attached, and
        the cost report itself is identical between the full route and the
        replay-resumed route (per site, not just in total)."""
        model = request.getfixturevalue(model_fixture)
        prompts = _tokens(model, n=2, length=12)
        with model.replay_into(session):
            clean = model.generate_batch(prompts, 6)
        reports, outs = [], []
        for use_replay in (False, True):
            injector = ErrorInjector(
                BitFlipModel(2e-3), SiteFilter.only(layers=[1]), seed=11
            )
            cost = CostInstrument(size=8)
            model.attach(injector, ClassicalABFT())
            model.executor.cost = cost
            try:
                with model.replay_into(session if use_replay else None):
                    outs.append(model.generate_batch(prompts, 6))
            finally:
                model.attach(None, None)
                model.executor.cost = None
            reports.append(cost.report)
        np.testing.assert_array_equal(outs[0], outs[1])
        np.testing.assert_array_equal(clean, model.generate_batch(prompts, 6))
        full, resumed = reports
        assert full.total_cycles == resumed.total_cycles
        assert full.macs == resumed.macs
        assert full.recovered_macs == resumed.recovered_macs
        assert full.by_site == resumed.by_site

    def test_cost_macs_match_executor_counters(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        tokens = _tokens(model, n=1)[0]
        cost = CostInstrument(size=8)
        model.executor.reset_counters()
        model.executor.cost = cost
        try:
            model.forward_full(tokens)
        finally:
            model.executor.cost = None
        assert cost.report.macs == model.executor.total_macs
        assert cost.report.component_totals().keys() == (
            model.executor.macs_by_component.keys()
        )
        for component, site_cost in cost.report.component_totals().items():
            assert site_cost.macs == model.executor.macs_by_component[component]


class TestCostSpec:
    def test_round_trip_and_true_shorthand(self):
        spec = CostSpec(size=32, dataflow=OS.value, e_mac_pj=0.5)
        assert CostSpec.from_dict(spec.to_dict()) == spec
        assert CostSpec.from_dict(True) == CostSpec()
        assert CostSpec.from_dict({}) == CostSpec()
        with pytest.raises(ValueError):
            CostSpec(dataflow="nonsense")
        with pytest.raises(ValueError):
            CostSpec(size=0)
        with pytest.raises(ValueError):  # typo'd field must fail at load time
            CostSpec.from_dict({"datafow": "output-stationary"})
        with pytest.raises(ValueError):  # truthy non-dict is a spec error
            CostSpec.from_dict(1)

    def test_campaign_spec_json_round_trip(self):
        from repro.campaigns.spec import CampaignSpec

        spec = CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], '
            '"cost": {"size": 16, "dataflow": "output-stationary"}}'
        )
        assert spec.cost == CostSpec(size=16, dataflow=OS.value)
        again = CampaignSpec.from_json(spec.to_json())
        assert again.cost == spec.cost
        assert CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], "cost": true}'
        ).cost == CostSpec()
        # "cost": {} is "enable with all defaults", not "off"; null/false disable.
        assert CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], "cost": {}}'
        ).cost == CostSpec()
        assert CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], "cost": false}'
        ).cost is None
        assert CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], "cost": null}'
        ).cost is None

    def test_cost_not_part_of_trial_identity(self):
        from repro.campaigns.spec import CampaignSpec

        with_cost = CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3], "cost": true}'
        )
        without = CampaignSpec.from_json(
            '{"name": "c", "models": ["opt-mini"], "bers": [1e-3]}'
        )
        assert [t.key for t in with_cost.expand()] == [t.key for t in without.expand()]


class TestCampaignCostColumns:
    def test_campaign_stores_and_reports_costs(self, tmp_path, opt_bundle):
        from repro.campaigns.executor import run_campaign
        from repro.campaigns.report import CSV_FIELDS, export_csv, report_table
        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
        from repro.campaigns.store import ResultStore

        spec = CampaignSpec(
            name="cost-test",
            models=(opt_bundle.name,),
            tasks=("perplexity",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            methods=("classical-abft",),
            seeds=(0,),
            cost=CostSpec(size=16),
        )
        with ResultStore(str(tmp_path / "store")) as store:
            report = run_campaign(spec, store, workers=0)
            assert report.executed == 1 and report.failed == 0
            (record,) = store.records()
            assert record.result.cycles > 0
            assert record.result.energy_j > 0.0
            assert record.result.recovered_macs >= 0
            table = report_table(store, spec, costs=True)
            assert "cycles" in table and "energy (uJ)" in table
            plain = report_table(store, spec)
            assert "cycles" not in plain
            csv_path = tmp_path / "out.csv"
            assert export_csv(store, csv_path, spec) == 1
            header = csv_path.read_text().splitlines()[0].split(",")
            assert header == CSV_FIELDS
            assert "cycles" in header and "energy_j" in header

    def test_cost_disabled_stores_zeros(self, tmp_path, opt_bundle):
        from repro.campaigns.executor import run_campaign
        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
        from repro.campaigns.store import ResultStore

        spec = CampaignSpec(
            name="no-cost-test",
            models=(opt_bundle.name,),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0,),
        )
        with ResultStore(str(tmp_path / "store")) as store:
            run_campaign(spec, store, workers=0)
            (record,) = store.records()
            assert record.result.cycles == 0
            assert record.result.energy_j == 0.0

    def test_energy_is_method_aware(self, opt_bundle):
        """Per-cell energy mirrors realm's per-method accounting: DMR pays
        its 2x compute factor, classical ABFT its detection overhead."""
        from repro.campaigns.executor import evaluate_trial
        from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
        from repro.characterization.evaluator import ModelEvaluator
        from repro.core.methods import METHODS

        evaluator = ModelEvaluator(opt_bundle, "perplexity")
        cost = CostSpec(size=16)

        def result_for(method):
            trial = Trial(
                model=opt_bundle.name,
                task="perplexity",
                site=SiteSpec.only(components=["O"], stages=["prefill"]),
                error=ErrorSpec.bitflip(None),
                method=method,
                voltage=0.70,
                seed=0,
            )
            return evaluate_trial(trial, evaluator, cost=cost)

        none = result_for("none")
        dmr = result_for("dmr")
        classical = result_for("classical-abft")
        # DMR doubles compute energy outright (plus analytic replay MACs).
        assert dmr.energy_j >= 2.0 * none.energy_j
        # Classical ABFT adds its detection-power fraction on top of
        # compute, plus recovery at nominal voltage.
        overhead = METHODS["classical-abft"].detection_overhead
        assert classical.energy_j > none.energy_j * (1.0 + overhead * 0.99)

    def test_report_excludes_costless_records_from_means(self, tmp_path):
        """A resumed campaign can mix cost-less legacy records into a cell;
        cost means must average the instrumented trials only."""
        from repro.campaigns.report import aggregate
        from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
        from repro.campaigns.store import ResultStore, TrialResult

        def trial(seed):
            return Trial(
                model="opt-mini",
                task="perplexity",
                site=SiteSpec.only(components=["O"]),
                error=ErrorSpec.bitflip(1e-3),
                seed=seed,
            )

        with ResultStore(tmp_path / "s") as store:
            store.add(trial(0), TrialResult(score=3.0, degradation=0.5, clean_score=2.5))
            store.add(
                trial(1),
                TrialResult(
                    score=3.0, degradation=0.5, clean_score=2.5,
                    cycles=1000, recovered_macs=10, energy_j=2e-6,
                ),
            )
            (summary,) = aggregate(store)
        assert summary.n == 2 and summary.n_costed == 1
        assert summary.has_costs
        assert summary.mean_cycles == 1000.0
        assert summary.mean_recovered_macs == 10.0
        assert summary.mean_energy_j == 2e-6

    def test_cost_scores_identical_to_costless(self, opt_bundle):
        """The cost instrument never changes what a trial measures."""
        from repro.campaigns.executor import evaluate_trial
        from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
        from repro.characterization.evaluator import ModelEvaluator

        evaluator = ModelEvaluator(opt_bundle, "perplexity")
        trial = Trial(
            model=opt_bundle.name,
            task="perplexity",
            site=SiteSpec.only(layers=[1]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)),
            seed=5,
        )
        with_cost = evaluate_trial(trial, evaluator, cost=CostSpec(size=16))
        without = evaluate_trial(trial, evaluator)
        assert with_cost.score == without.score
        assert with_cost.degradation == without.degradation
        assert with_cost.injected_errors == without.injected_errors
        assert with_cost.cycles > 0 and without.cycles == 0


class TestMeasuredEnergyPath:
    def test_method_run_costs_are_measured(self, opt_bundle):
        """Fig. 9 cells carry measured cycles, and their energy reproduces
        from the measured MAC counts (not analytic reconstructions)."""
        from repro.core.methods import METHODS
        from repro.core.realm import ReaLMConfig, ReaLMPipeline
        from repro.energy.model import EnergyModel, EnergyParams

        pipe = ReaLMPipeline(
            opt_bundle, ReaLMConfig(voltages=(0.80,), array_size=64)
        )
        run = pipe.evaluate_method_at("classical-abft", None, 0.80)
        assert run.cycles > 0
        assert run.macs == pipe.evaluator.model.executor.total_macs
        method = METHODS["classical-abft"]
        expected = EnergyModel(
            EnergyParams(
                e_mac_pj=pipe.config.e_mac_pj,
                detection_overhead=method.detection_overhead,
                compute_factor=method.compute_factor,
            )
        ).total_j(run.macs, run.recovered_macs, 0.80)
        assert run.energy_j == expected
