"""Integration tests for the characterization harness: the paper's insights
must actually emerge from the built system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.region import GridPoint
from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.characterization.fitting import (
    characterization_grid_points,
    fit_component_region,
    fit_msd_threshold,
)
from repro.characterization.questions import (
    q12_bitwise,
    q13_components,
    q14_magfreq,
)
from repro.characterization.sweeps import ber_sweep, magfreq_grid
from repro.errors.sites import Component, SiteFilter


class TestModelEvaluator:
    def test_unknown_task_rejected(self, opt_bundle):
        with pytest.raises(KeyError):
            ModelEvaluator(opt_bundle, "mmlu")

    def test_clean_score_cached_and_sane(self, opt_evaluator):
        first = opt_evaluator.clean_score
        second = opt_evaluator.clean_score
        assert first == second
        assert 1.0 < first < 10.0  # trained tiny model perplexity

    def test_run_detaches_afterwards(self, opt_evaluator):
        from repro.errors.injector import ErrorInjector
        from repro.errors.models import BitFlipModel

        opt_evaluator.run(ErrorInjector(BitFlipModel(1e-3), seed=0))
        assert opt_evaluator.model.injector is None
        assert opt_evaluator.model.protector is None

    def test_degradation_orientation_perplexity(self, opt_evaluator):
        # higher perplexity = worse => positive degradation
        assert opt_evaluator.degradation(opt_evaluator.clean_score + 1.0) == pytest.approx(1.0)

    def test_degradation_orientation_accuracy(self, opt_bundle):
        ev = ModelEvaluator(opt_bundle, "lambada")
        assert ev.degradation(ev.clean_score - 5.0) == pytest.approx(5.0)


class TestInsight1SensitiveVsResilient:
    """Paper Insight 1: components followed by normalization (O, FC2) are
    far less resilient than the others."""

    def test_component_split_on_perplexity(self, opt_evaluator):
        records = q13_components(
            opt_evaluator,
            components=[Component.K, Component.SV, Component.O, Component.FC2],
            bers=(1e-3,),
        )
        by_label = {r.label: r.degradation for r in records}
        assert by_label["O"] > 10 * max(by_label["K"], 1e-6)
        assert by_label["FC2"] > 10 * max(by_label["SV"], 1e-6)

    def test_split_holds_for_llama_arch(self, llama_bundle):
        ev = ModelEvaluator(llama_bundle, "perplexity")
        records = q13_components(
            ev, components=[Component.V, Component.UP, Component.O, Component.DOWN],
            bers=(1e-3,),
        )
        by_label = {r.label: r.degradation for r in records}
        sensitive = max(by_label["O"], by_label["Down"])
        resilient = max(by_label["V"], by_label["Up"])
        assert sensitive > 5 * max(resilient, 1e-6)


class TestInsight2MagFreqTradeoff:
    def test_sensitive_component_fails_on_few_large_errors(self, opt_evaluator):
        records = q14_magfreq(
            opt_evaluator, Component.O, mags=(2**24,), freqs=(2,)
        )
        assert records[0].degradation > 0.3

    def test_resilient_component_tolerates_sporadic_large(self, opt_evaluator):
        records = q14_magfreq(
            opt_evaluator, Component.K, mags=(2**24,), freqs=(2,)
        )
        assert records[0].degradation < 0.3

    def test_grid_monotone_in_frequency_for_sensitive(self, opt_evaluator):
        records = q14_magfreq(
            opt_evaluator, Component.FC2, mags=(2**20,), freqs=(1, 64)
        )
        assert records[-1].degradation >= records[0].degradation - 0.05


class TestQ12Bitwise:
    def test_low_bits_harmless_high_bits_harmful_on_sensitive(self, opt_evaluator):
        records = q12_bitwise(
            opt_evaluator, bits=(10, 30), components=(Component.O,), bers=(1e-3,)
        )
        by_label = {r.label: r.degradation for r in records}
        assert by_label["O/bit10"] < 0.3
        assert by_label["O/bit30"] > 0.3  # beyond the paper's budget
        assert by_label["O/bit30"] > 10 * max(by_label["O/bit10"], 0.01)

    def test_requantization_saturates_k_errors(self, opt_evaluator):
        """High-bit flips on K are bounded by the next static quantizer."""
        records = q12_bitwise(
            opt_evaluator, bits=(30,), components=(Component.K,), bers=(1e-3,)
        )
        assert records[0].degradation < 0.3


class TestFitting:
    def test_grid_points_conversion(self, opt_evaluator):
        records = magfreq_grid(
            opt_evaluator, mags=(2**8,), freqs=(1, 4),
            site_filter=SiteFilter.only(components=[Component.K]),
        )
        points = characterization_grid_points(records)
        assert len(points) == 2
        assert {p.freq for p in points} == {1.0, 4.0}

    def test_conversion_rejects_non_grid_records(self, opt_evaluator):
        records = ber_sweep(opt_evaluator, [1e-4])
        with pytest.raises(ValueError):
            characterization_grid_points(records)

    def test_fit_component_region_kinds(self, opt_evaluator):
        region_k, points_k = fit_component_region(
            opt_evaluator, Component.K, budget=0.3,
            mags=(2**8, 2**26), freqs=(1, 16),
        )
        region_o, points_o = fit_component_region(
            opt_evaluator, Component.O, budget=0.3,
            mags=(2**8, 2**26), freqs=(1, 16),
        )
        assert region_k.kind == "resilient"
        assert region_o.kind == "sensitive"
        # sensitive component must trip recovery at large-mag patterns
        assert any(p.degradation > 0.3 for p in points_o)
        critical = [p for p in points_o if p.degradation > 0.3]
        assert all(region_o.predicts_recovery(p.mag, p.freq) for p in critical)

    def test_fit_msd_threshold_guards_critical_points(self):
        points = [
            GridPoint(mag=2**10, freq=1, degradation=0.0),
            GridPoint(mag=2**20, freq=1, degradation=5.0),
        ]
        thr = fit_msd_threshold(points, budget=0.3)
        assert thr < 2**20
        assert thr >= 2**10

    def test_fit_msd_threshold_all_acceptable(self):
        points = [GridPoint(mag=2**10, freq=2, degradation=0.0)]
        assert fit_msd_threshold(points, budget=0.3) == 2**11
