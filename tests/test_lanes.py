"""Trial-lane vectorization equivalence tests (DESIGN.md section 9).

The contract: every lane of a packed run — score, injector RNG stream and
statistics, protector statistics, measured cost columns — is **bit-identical**
(``==`` / ``assert_array_equal``, never ``allclose``) to running that trial
alone through the per-trial dispatch route, across prefill+decode tasks,
±ABFT, replay on/off, and every behavioral method.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaigns.executor import evaluate_trial
from repro.campaigns.lanes import (
    LanePacker,
    build_injector,
    build_protector,
    evaluate_lane_pack,
    pack_signature,
    prepare_lanes,
)
from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
from repro.characterization.evaluator import ModelEvaluator
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.dispatch.cost import CostSpec
from repro.errors.injector import ErrorInjector, LaneInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter, SiteFilterUnion, Stage

#: Everything of a TrialResult that belongs to the bit-exactness contract
#: (elapsed_s/worker are wall-clock telemetry, explicitly excluded).
RESULT_FIELDS = (
    "score",
    "degradation",
    "clean_score",
    "injected_errors",
    "gemm_calls",
    "cycles",
    "recovered_macs",
    "energy_j",
)

#: Fast-but-meaningful calibration grid for the behavioral methods
#: (mirrors tests/test_core_realm.py).
FAST_CFG = dict(
    calib_mags=tuple(2**p for p in (4, 10, 16, 22, 28)),
    calib_freqs=(1, 8, 64, 256),
)

BEHAVIORAL_METHODS = ("classical-abft", "approx-abft", "statistical-abft")


def _trials(method="none", task="perplexity", seeds=(0, 1, 2), ber=2e-3, bit=30):
    return [
        Trial(
            model="opt-mini",
            task=task,
            site=SiteSpec.only(components=["O"], stages=["prefill"]),
            error=ErrorSpec.bitflip(ber, bits=(bit,)),
            method=method,
            seed=s,
        )
        for s in seeds
    ]


def _assert_pack_matches_solo(trials, evaluator, pipeline=None, cost=None):
    solo = [evaluate_trial(t, evaluator, pipeline, cost=cost) for t in trials]
    packed = evaluate_lane_pack(trials, evaluator, pipeline, cost=cost)
    for trial, s, p in zip(trials, solo, packed):
        for field in RESULT_FIELDS:
            assert getattr(s, field) == getattr(p, field), (
                f"lane diverged from solo on seed {trial.seed}, field {field}: "
                f"{getattr(s, field)} != {getattr(p, field)}"
            )
    return solo, packed


# --------------------------------------------------------------- engine level
class TestPackedForwardLanes:
    """Engine-level: each lane block of a packed forward equals its solo run."""

    def _forward(self, model, tokens, injector):
        model.attach(injector, None)
        try:
            return model.forward_full(tokens)
        finally:
            model.attach(None, None)

    @pytest.mark.parametrize("model_fixture", ["opt_quant", "llama_quant"])
    def test_lane_blocks_bit_identical(self, model_fixture, request):
        model = request.getfixturevalue(model_fixture)
        vocab = model.config.vocab_size
        tokens = np.stack([(np.arange(20) * (1 + i)) % vocab for i in range(2)])
        filters = [
            SiteFilter.only(layers=[0]),
            SiteFilter.only(components=[Component.O]),
            SiteFilter.everywhere(),
        ]
        solo_outputs, solo_injectors = [], []
        for j, flt in enumerate(filters):
            injector = ErrorInjector(BitFlipModel(2e-3, bits=(30,)), flt, seed=10 + j)
            solo_outputs.append(self._forward(model, tokens, injector))
            solo_injectors.append(injector)
        lanes = [
            ErrorInjector(BitFlipModel(2e-3, bits=(30,)), flt, seed=10 + j)
            for j, flt in enumerate(filters)
        ]
        packed = self._forward(model, np.tile(tokens, (len(lanes), 1)), LaneInjector(lanes))
        rows = tokens.shape[0]
        for j, (out, solo_injector, lane) in enumerate(
            zip(solo_outputs, solo_injectors, lanes)
        ):
            np.testing.assert_array_equal(packed[j * rows : (j + 1) * rows], out)
            assert lane._call_index == solo_injector._call_index
            assert lane.stats.gemm_calls == solo_injector.stats.gemm_calls
            assert lane.stats.injected_errors == solo_injector.stats.injected_errors
            assert lane.stats.per_site_errors == solo_injector.stats.per_site_errors

    def test_clean_lane_rides_along_untouched(self, opt_quant):
        vocab = opt_quant.config.vocab_size
        tokens = np.stack([(np.arange(16) * 3) % vocab])
        clean = opt_quant.forward_full(tokens)
        injector = LaneInjector(
            [None, ErrorInjector(BitFlipModel(0.3, bits=(30,)), seed=1)]
        )
        packed = self._forward(opt_quant, np.tile(tokens, (2, 1)), injector)
        np.testing.assert_array_equal(packed[:1], clean)
        assert not np.array_equal(packed[1:], clean)  # lane 1 was corrupted


# ------------------------------------------------------------- result parity
@pytest.mark.parametrize("replay", [True, False])
class TestResultParity:
    @pytest.mark.parametrize("task", ["perplexity", "xsum"])
    @pytest.mark.parametrize("method", ["none", "classical-abft", "dmr"])
    def test_methods_and_tasks(self, opt_bundle, method, task, replay):
        evaluator = ModelEvaluator(opt_bundle, task, replay=replay)
        _assert_pack_matches_solo(_trials(method=method, task=task), evaluator)

    def test_decode_stage_lanes(self, opt_bundle, replay):
        """Decode-targeting filters force live decode under packing too."""
        evaluator = ModelEvaluator(opt_bundle, "xsum", replay=replay)
        trials = [
            Trial(
                model="opt-mini",
                task="xsum",
                site=SiteSpec.only(stages=["decode"]),
                error=ErrorSpec.bitflip(2e-3, bits=(30,)),
                seed=s,
            )
            for s in range(3)
        ]
        _assert_pack_matches_solo(trials, evaluator)

    def test_mixed_cells_single_pack(self, opt_bundle, replay):
        """Lanes with different sites/errors (incl. a clean lane) still
        produce solo-identical results when packed together."""
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=replay)
        trials = [
            Trial(
                model="opt-mini", task="perplexity",
                site=SiteSpec.only(layers=[0]),
                error=ErrorSpec.bitflip(2e-3, bits=(30,)), seed=0,
            ),
            Trial(
                model="opt-mini", task="perplexity",
                site=SiteSpec.only(layers=[1]),
                error=ErrorSpec.bitflip(2e-3, bits=(29,)), seed=1,
            ),
            Trial(
                model="opt-mini", task="perplexity",
                site=SiteSpec.only(components=["K"]),
                error=ErrorSpec.magfreq(1 << 14, 4), seed=2,
            ),
            Trial(
                model="opt-mini", task="perplexity",
                site=SiteSpec.everywhere(), error=ErrorSpec.clean(), seed=3,
            ),
        ]
        _assert_pack_matches_solo(trials, evaluator, cost=CostSpec())

    def test_single_lane_pack_equals_solo(self, opt_bundle, replay):
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=replay)
        _assert_pack_matches_solo(_trials(seeds=(5,)), evaluator)


class TestBehavioralMethods:
    """Every behavioral method, packed vs solo, with calibrated pipelines."""

    @pytest.fixture(scope="class")
    def calibrated(self, opt_bundle):
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        pipeline = ReaLMPipeline(
            opt_bundle, ReaLMConfig(task="perplexity", **FAST_CFG), evaluator=evaluator
        )
        return evaluator, pipeline

    @pytest.mark.parametrize("method", BEHAVIORAL_METHODS)
    def test_behavioral_method_parity(self, calibrated, method):
        evaluator, pipeline = calibrated
        trials = _trials(method=method, ber=5e-3)
        _assert_pack_matches_solo(trials, evaluator, pipeline, cost=CostSpec())

    def test_protector_statistics_per_lane(self, calibrated):
        """Per-lane protector stats — inspections, detections, recoveries,
        charged MACs, per-site counts — equal the solo runs'."""
        evaluator, pipeline = calibrated
        trials = _trials(method="statistical-abft", ber=5e-3)
        solo_protectors = []
        for trial in trials:
            injector = build_injector(trial)
            protector = build_protector(trial, evaluator, pipeline)
            evaluator.run(injector, protector)
            solo_protectors.append(protector)
        _, lane_protectors, _, packed = prepare_lanes(trials, evaluator, pipeline)
        evaluator.run(*packed, lanes=len(trials))
        for solo, lane in zip(solo_protectors, lane_protectors):
            assert lane.stats.inspected == solo.stats.inspected
            assert lane.stats.detected == solo.stats.detected
            assert lane.stats.recovered == solo.stats.recovered
            assert lane.stats.recovered_macs == solo.stats.recovered_macs
            assert lane.stats.per_site_recoveries == solo.stats.per_site_recoveries


class TestCostParity:
    def test_per_lane_cost_reports_match_solo(self, opt_bundle):
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        spec = CostSpec()
        trials = _trials(method="classical-abft", ber=5e-3)
        pipeline = None
        solo_costs = []
        for trial in trials:
            injector = build_injector(trial)
            protector = build_protector(trial, evaluator, pipeline)
            cost = spec.build()
            evaluator.run(injector, protector, cost=cost)
            solo_costs.append(cost)
        _, _, lane_costs, packed = prepare_lanes(trials, evaluator, pipeline, spec)
        evaluator.run(*packed, lanes=len(trials))
        for solo, lane in zip(solo_costs, lane_costs):
            assert lane.report.total_cycles == solo.report.total_cycles
            assert lane.report.macs == solo.report.macs
            assert lane.report.tiles == solo.report.tiles
            assert lane.report.recovered_macs == solo.report.recovered_macs
            assert lane.report.recovery_cycles == solo.report.recovery_cycles
            assert set(lane.report.by_site) == set(solo.report.by_site)
            assert lane.energy(0.7).total_j == solo.energy(0.7).total_j

    def test_voltage_lanes_energy_at_own_voltage(self, opt_bundle):
        """Lanes at different voltages derive their own BER and energy."""
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        trials = [
            Trial(
                model="opt-mini", task="perplexity",
                site=SiteSpec.only(components=["O"], stages=["prefill"]),
                error=ErrorSpec.bitflip(None, bits=(30,)),
                voltage=v, seed=s,
            )
            for s, v in enumerate((0.80, 0.72, 0.64))
        ]
        solo, packed = _assert_pack_matches_solo(
            trials, evaluator, cost=CostSpec()
        )
        energies = [r.energy_j for r in packed]
        # deeper underscaling: quadratically less compute energy per MAC
        assert energies == sorted(energies, reverse=True)


# ------------------------------------------------------------------- packing
class TestLanePacker:
    def _packer(self, opt_bundle, max_lanes=8):
        return LanePacker(max_lanes=max_lanes, config_for=lambda m: opt_bundle.config)

    def test_groups_by_model_task_method_resume(self, opt_bundle):
        a = _trials(seeds=(0, 1))
        b = _trials(method="classical-abft", seeds=(0, 1))
        c = _trials(task="xsum", seeds=(0,))
        packs = self._packer(opt_bundle).pack(a + b + c)
        assert [len(p) for p in packs] == [2, 2, 1]
        assert {t.method for t in packs[0]} == {"none"}
        assert {t.method for t in packs[1]} == {"classical-abft"}
        assert {t.task for t in packs[2]} == {"xsum"}

    def test_resume_layer_splits_groups(self, opt_bundle):
        early = Trial(
            model="opt-mini", task="perplexity", site=SiteSpec.only(layers=[0]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)), seed=0,
        )
        late = Trial(
            model="opt-mini", task="perplexity", site=SiteSpec.only(layers=[1]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)), seed=0,
        )
        assert pack_signature(early, opt_bundle.config) != pack_signature(
            late, opt_bundle.config
        )
        packs = self._packer(opt_bundle).pack([early, late])
        assert [len(p) for p in packs] == [1, 1]

    def test_max_lanes_chunking(self, opt_bundle):
        trials = _trials(seeds=tuple(range(10)))
        packs = self._packer(opt_bundle, max_lanes=4).pack(trials)
        assert [len(p) for p in packs] == [4, 4, 2]
        assert [t.seed for p in packs for t in p] == list(range(10))

    def test_pack_rejects_mixed_methods(self, opt_bundle):
        evaluator = ModelEvaluator(opt_bundle, "perplexity")
        mixed = _trials(seeds=(0,)) + _trials(method="classical-abft", seeds=(1,))
        with pytest.raises(ValueError, match="share one"):
            evaluate_lane_pack(mixed, evaluator)


class TestSiteFilterUnionReasoning:
    def test_union_matches_and_earliest_layer(self):
        union = SiteFilterUnion(
            (SiteFilter.only(layers=[2]), SiteFilter.only(layers=[5]))
        )
        assert union.earliest_layer(8) == 2
        assert union.earliest_layer(4) == 2
        assert union.earliest_layer(2) is None
        decode_only = SiteFilterUnion((SiteFilter.only(stages=[Stage.DECODE]),))
        assert decode_only.earliest_layer(4, stage=Stage.PREFILL) is None
        assert decode_only.targets_stage(Stage.DECODE)
        from repro.errors.sites import GemmSite

        site = GemmSite(layer=5, component=Component.Q, stage=Stage.PREFILL)
        assert union.matches(site)
        assert not union.matches(
            GemmSite(layer=3, component=Component.Q, stage=Stage.PREFILL)
        )


# ------------------------------------------------------------- campaign level
class TestCampaignLaneWidthInvariance:
    def test_stored_results_identical_at_any_lane_width(self, tmp_path, opt_bundle):
        from repro.campaigns.executor import run_campaign
        from repro.campaigns.spec import CampaignSpec
        from repro.campaigns.store import ResultStore

        spec = CampaignSpec(
            name="lane-width-invariance",
            models=("opt-mini",),
            sites=(
                SiteSpec.only(components=["O"], stages=["prefill"]),
                SiteSpec.only(components=["K"], stages=["prefill"]),
            ),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0, 1),
        )
        results = {}
        for width in (1, 8):
            with ResultStore(tmp_path / f"w{width}") as store:
                report = run_campaign(spec, store, workers=0, lane_width=width)
                assert report.executed == 4 and report.failed == 0
                results[width] = {
                    t.key: store.get(t.key).result for t in spec.expand()
                }
        for key, solo in results[1].items():
            packed = results[8][key]
            for field in RESULT_FIELDS:
                assert getattr(solo, field) == getattr(packed, field), (key, field)
