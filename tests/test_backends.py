"""Cross-backend differential conformance suite (DESIGN.md section 11).

Every registered GEMM backend — plus a test-only dummy proving third-party
backends inherit the whole contract — is held to **bit-equality** with an
independent int64 oracle and with the ``numpy-f64`` reference route:

- adversarial shapes: empty/1x1/ragged tiles, k straddling the tiled-f32
  block boundary, stacked batched operands, full int8 range incl. -128;
- overflow semantics pinned against ``wrap_int32``/``saturate_int32`` at
  wraparound-triggering magnitudes;
- seeded property-based fuzz (hypothesis when importable, seeded random
  shapes otherwise);
- engine-level end-to-end equality: logits, injector RNG counters,
  protector statistics, and cost columns, solo and lane-packed;
- replay-trace quarantine for non-exact backends (segregated cache keys,
  refused cross-backend resume) and campaign key/provenance rules.
"""

from __future__ import annotations

import subprocess
import sys
from types import SimpleNamespace

import numpy as np
import pytest

from repro.abft.protectors import ClassicalABFT
from repro.campaigns.executor import evaluate_trial, run_campaign
from repro.campaigns.lanes import evaluate_lane_pack
from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec, Trial
from repro.campaigns.store import ResultStore
from repro.dispatch.backends import (
    GemmBackend,
    get_backend,
    resolve_backend,
    use_backend,
)
from repro.dispatch.backends.blocked import F32_K_BLOCK, BlockedBackend
from repro.dispatch.backends.registry import (
    ENV_VAR,
    backend_names,
    register_backend,
    unregister_backend,
)
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter, Stage
from repro.models.quantized import GemmExecutor
from repro.models.replay import ReplaySession, TraceStore, check_trace_backend
from repro.quant.gemm import INT32_MAX, gemm_int32, saturate_int32, wrap_int32


# --------------------------------------------------------------------------
# Test-only backends. The mirror backend is registered at import time so
# the registry-driven parametrizations below pick it up at collection —
# proving a backend added from *outside* the package inherits the whole
# conformance contract.
# --------------------------------------------------------------------------
class _MirrorBackend(GemmBackend):
    """Exact dummy: delegates the product to the numpy-f64 oracle."""

    name = "test-mirror"
    exact = True
    bypass = True

    def product_int64(self, a_q, b_q, b_f64=None):
        return get_backend("numpy-f64").product_int64(a_q, b_q, b_f64=b_f64)


class _LossyBackend(GemmBackend):
    """Deliberately wrong (off-by-one) — exercises the non-exact quarantine."""

    name = "test-lossy"
    exact = False
    bypass = False

    def product_int64(self, a_q, b_q, b_f64=None):
        return get_backend("numpy-f64").product_int64(a_q, b_q, b_f64=b_f64) + 1


class _UnavailableBackend(GemmBackend):
    name = "test-unavailable"

    def available(self):
        return False

    def why_unavailable(self):
        return "always offline (test)"

    def product_int64(self, a_q, b_q, b_f64=None):  # pragma: no cover
        raise AssertionError("unavailable backend must never run")


if "test-mirror" not in backend_names():
    register_backend(_MirrorBackend())

#: Registry snapshot at collection: the three real backends + the mirror.
ALL_BACKENDS = tuple(backend_names())
EXACT_BACKENDS = tuple(
    n for n in ALL_BACKENDS if get_backend(n).exact and get_backend(n).available()
)


@pytest.fixture
def lossy_backend():
    backend = register_backend(_LossyBackend())
    try:
        yield backend
    finally:
        unregister_backend(backend.name)


def _oracle_int32(a, b, wraparound=True):
    """Independent reference: int64 matmul + accumulator semantics."""
    exact = a.astype(np.int64) @ b.astype(np.int64)
    if (
        a.dtype == np.int8
        and b.dtype == np.int8
        and a.shape[-1] * 127 * 127 <= INT32_MAX
    ):
        return exact
    return wrap_int32(exact) if wraparound else saturate_int32(exact)


def _int8(rng, shape):
    return rng.integers(-128, 128, size=shape, dtype=np.int8)


# ------------------------------------------------------------- kernel level
#: Adversarial shapes: degenerate dims, ragged tiles, and k values
#: straddling the blocked backend's f32 block boundary (1024).
SHAPES = [
    ((0, 4), (4, 3)),
    ((4, 0), (0, 3)),
    ((1, 1), (1, 1)),
    ((1, 7), (7, 1)),
    ((17, 33), (33, 9)),
    ((3, F32_K_BLOCK - 1), (F32_K_BLOCK - 1, 2)),
    ((3, F32_K_BLOCK), (F32_K_BLOCK, 2)),
    ((3, F32_K_BLOCK + 1), (F32_K_BLOCK + 1, 2)),
    ((5, 2 * F32_K_BLOCK + 32), (2 * F32_K_BLOCK + 32, 4)),
    ((2, 3, 8, 16), (2, 3, 16, 8)),
]


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestKernelConformance:
    """Every backend == the int64 oracle, bit for bit, on every input."""

    def _backend(self, name):
        backend = get_backend(name)
        if not backend.available():
            pytest.skip(f"{name} unavailable: {backend.why_unavailable()}")
        return backend

    @pytest.mark.parametrize("a_shape,b_shape", SHAPES)
    def test_adversarial_shapes(self, name, a_shape, b_shape):
        backend = self._backend(name)
        rng = np.random.default_rng(hash((name, a_shape)) % (2**32))
        a, b = _int8(rng, a_shape), _int8(rng, b_shape)
        np.testing.assert_array_equal(
            backend.matmul_int32(a, b), _oracle_int32(a, b)
        )

    def test_full_int8_range_including_minus_128(self, name):
        backend = self._backend(name)
        codes = np.arange(-128, 128, dtype=np.int8)
        a = np.tile(codes, (4, 1))
        b = np.tile(codes[:, None], (1, 6))
        np.testing.assert_array_equal(
            backend.matmul_int32(a, b), _oracle_int32(a, b)
        )

    @pytest.mark.parametrize("wraparound", [True, False])
    def test_overflow_semantics_pinned(self, name, wraparound):
        """Saturation-boundary magnitudes: k·127² far beyond INT32_MAX with
        ±127 fill (quantizer-range codes, matching the bypass guard)."""
        backend = self._backend(name)
        k = 140_000
        a = np.full((2, k), 127, dtype=np.int8)
        a[1] = -127
        b = np.full((k, 3), 127, dtype=np.int8)
        b[:, 1] = -127
        got = backend.matmul_int32(a, b, wraparound=wraparound)
        expected = _oracle_int32(a, b, wraparound=wraparound)
        np.testing.assert_array_equal(got, expected)
        assert got.dtype == expected.dtype
        # the case must actually trigger overflow handling to mean anything
        exact = a.astype(np.int64) @ b.astype(np.int64)
        assert np.abs(exact).max() > INT32_MAX

    def test_b_f64_mirror_is_equivalent(self, name):
        backend = self._backend(name)
        rng = np.random.default_rng(11)
        a, b = _int8(rng, (9, 40)), _int8(rng, (40, 7))
        np.testing.assert_array_equal(
            backend.matmul_int32(a, b, b_f64=b.astype(np.float64)),
            backend.matmul_int32(a, b),
        )

    def test_matmul_f64_bypass_is_exact(self, name):
        """The bypass product must be the exact integer result in float64."""
        backend = self._backend(name)
        if not backend.bypass:
            pytest.skip(f"{name} does not serve the bypass route")
        rng = np.random.default_rng(13)
        a, b = _int8(rng, (8, 64)), _int8(rng, (64, 5))
        got = backend.matmul_f64(a, b)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(
            got, (a.astype(np.int64) @ b.astype(np.int64)).astype(np.float64)
        )

    def test_fuzz_random_shapes(self, name):
        backend = self._backend(name)
        try:
            from hypothesis import given, settings, strategies as st

            @settings(max_examples=40, deadline=None)
            @given(
                m=st.integers(0, 9),
                k=st.one_of(
                    st.integers(0, 9),
                    st.sampled_from(
                        [F32_K_BLOCK - 1, F32_K_BLOCK, F32_K_BLOCK + 1]
                    ),
                ),
                n=st.integers(0, 9),
                seed=st.integers(0, 2**31 - 1),
            )
            def check(m, k, n, seed):
                rng = np.random.default_rng(seed)
                a, b = _int8(rng, (m, k)), _int8(rng, (k, n))
                np.testing.assert_array_equal(
                    backend.matmul_int32(a, b), _oracle_int32(a, b)
                )

            check()
        except ImportError:  # pragma: no cover - hypothesis is in the image
            rng = np.random.default_rng(99)
            for _ in range(40):
                m, n = rng.integers(0, 10, size=2)
                k = int(
                    rng.choice(
                        [0, 1, 3, 8, F32_K_BLOCK - 1, F32_K_BLOCK, F32_K_BLOCK + 1]
                    )
                )
                a, b = _int8(rng, (m, k)), _int8(rng, (k, n))
                np.testing.assert_array_equal(
                    backend.matmul_int32(a, b), _oracle_int32(a, b)
                )


class TestGemmInt32Delegation:
    """quant.gemm.gemm_int32 is a thin dispatcher over the registry."""

    def test_blas_flag_selects_backends(self, rng):
        a, b = _int8(rng, (6, 20)), _int8(rng, (20, 4))
        np.testing.assert_array_equal(
            gemm_int32(a, b, blas=True),
            get_backend("numpy-f64").matmul_int32(a, b),
        )
        np.testing.assert_array_equal(
            gemm_int32(a, b, blas=False),
            get_backend("numpy-int").matmul_int32(a, b),
        )

    def test_backend_argument_accepts_names_and_instances(self, rng):
        a, b = _int8(rng, (6, 20)), _int8(rng, (20, 4))
        expected = _oracle_int32(a, b)
        np.testing.assert_array_equal(gemm_int32(a, b, backend="blocked"), expected)
        np.testing.assert_array_equal(
            gemm_int32(a, b, backend=BlockedBackend()), expected
        )


# ------------------------------------------------------------ registry level
class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(_MirrorBackend())
        register_backend(_MirrorBackend(), replace=True)  # explicit wins

    def test_get_backend_unknown_name(self):
        with pytest.raises(KeyError, match="no-such-kernel"):
            get_backend("no-such-kernel")

    def test_resolve_default_and_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend().name == "numpy-f64"
        monkeypatch.setenv(ENV_VAR, "numpy-int")
        assert resolve_backend().name == "numpy-int"
        assert resolve_backend("blocked").name == "blocked"  # explicit wins

    def test_resolve_unknown_falls_back_with_warning(self, caplog):
        with caplog.at_level("WARNING", logger="repro.dispatch.backends"):
            backend = resolve_backend("no-such-kernel")
        assert backend.name == "numpy-f64"
        assert any("no-such-kernel" in r.message for r in caplog.records)
        with pytest.raises(KeyError):
            resolve_backend("no-such-kernel", strict=True)

    def test_resolve_unavailable_falls_back_with_warning(self, caplog):
        offline = _UnavailableBackend()
        with caplog.at_level("WARNING", logger="repro.dispatch.backends"):
            backend = resolve_backend(offline)
        assert backend.name == "numpy-f64"
        assert any("always offline" in r.message for r in caplog.records)
        with pytest.raises(RuntimeError, match="always offline"):
            resolve_backend(offline, strict=True)

    def test_use_backend_restores_on_exit_and_error(self):
        ex = GemmExecutor(backend="numpy-f64")
        assert ex.backend.name == "numpy-f64"
        with use_backend(ex, "numpy-int") as active:
            assert active.name == "numpy-int" and ex.backend is active
        assert ex.backend.name == "numpy-f64"
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend(ex, "blocked"):
                raise RuntimeError("boom")
        assert ex.backend.name == "numpy-f64"
        with use_backend(ex, None) as active:  # None = keep current
            assert active is ex.backend

    def test_executor_constructor_accepts_backend(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert GemmExecutor().backend.name == "numpy-f64"
        assert GemmExecutor(backend="numpy-int").backend.name == "numpy-int"
        assert GemmExecutor(backend=BlockedBackend()).backend.name == "blocked"


class TestSpawnPropagation:
    """$REPRO_GEMM_BACKEND reaches fresh interpreters (spawn workers)."""

    PROBE = (
        "from repro.models.quantized import GemmExecutor; "
        "print(GemmExecutor().backend.name)"
    )

    def _spawn(self, env_value):
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        if env_value is None:
            env.pop(ENV_VAR, None)
        else:
            env[ENV_VAR] = env_value
        proc = subprocess.run(
            [sys.executable, "-c", self.PROBE],
            capture_output=True, text=True, env=env, cwd="/root/repo",
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout.strip().splitlines()[-1]

    def test_env_var_selects_backend_in_fresh_process(self):
        assert self._spawn("numpy-int") == "numpy-int"
        assert self._spawn("blocked") == "blocked"

    def test_unknown_env_value_degrades_to_default(self):
        """Mixed-availability pools must degrade loudly, never answer wrong."""
        assert self._spawn("no-such-kernel") == "numpy-f64"


# ------------------------------------------------------------- engine level
def _trial(seed=0, method="none"):
    return Trial(
        model="opt-mini",
        task="perplexity",
        site=SiteSpec.only(components=["O"], stages=["prefill"]),
        error=ErrorSpec.bitflip(2e-3, bits=(30,)),
        method=method,
        seed=seed,
    )


#: TrialResult columns in the bit-exactness contract (elapsed_s / worker /
#: backend are telemetry and provenance, explicitly excluded).
RESULT_FIELDS = (
    "score", "degradation", "clean_score", "injected_errors", "gemm_calls",
    "cycles", "recovered_macs", "energy_j",
)


class TestEngineEquivalence:
    """Exact backends are interchangeable at the engine level, bit for bit."""

    def _forward(self, model, tokens, backend, seed=7):
        injector = ErrorInjector(
            BitFlipModel(2e-3, bits=(30,)),
            SiteFilter.only(components=[Component.O]),
            seed=seed,
        )
        protector = ClassicalABFT()
        model.attach(injector, protector)
        try:
            with use_backend(model.executor, backend):
                logits = model.forward_full(tokens)
        finally:
            model.attach(None, None)
        return logits, injector, protector

    @pytest.mark.parametrize(
        "name", [n for n in EXACT_BACKENDS if n != "numpy-f64"]
    )
    def test_forward_full_logits_rng_and_protector(self, name, opt_quant):
        vocab = opt_quant.config.vocab_size
        tokens = np.stack([(np.arange(24) * (1 + i)) % vocab for i in range(2)])
        ref, ref_inj, ref_prot = self._forward(opt_quant, tokens, "numpy-f64")
        got, inj, prot = self._forward(opt_quant, tokens, name)
        np.testing.assert_array_equal(ref, got)
        assert inj._call_index == ref_inj._call_index
        assert inj.stats.injected_errors == ref_inj.stats.injected_errors
        assert inj.stats.per_site_errors == ref_inj.stats.per_site_errors
        assert prot.stats.inspected == ref_prot.stats.inspected
        assert prot.stats.detected == ref_prot.stats.detected
        assert prot.stats.recovered == ref_prot.stats.recovered

    @pytest.mark.parametrize(
        "name", [n for n in EXACT_BACKENDS if n != "numpy-f64"]
    )
    def test_trial_columns_solo_and_lane_packed(self, name, opt_evaluator):
        from repro.dispatch.cost import CostSpec

        trials = [_trial(seed=s) for s in (0, 1, 2)]
        cost = CostSpec()
        resident = opt_evaluator.model.executor.backend.name
        ref = [
            evaluate_trial(t, opt_evaluator, cost=cost, backend="numpy-f64")
            for t in trials
        ]
        solo = [
            evaluate_trial(t, opt_evaluator, cost=cost, backend=name)
            for t in trials
        ]
        packed = evaluate_lane_pack(
            trials, opt_evaluator, cost=cost, backend=name
        )
        for r, s, p in zip(ref, solo, packed):
            for field in RESULT_FIELDS:
                assert getattr(r, field) == getattr(s, field), field
                assert getattr(r, field) == getattr(p, field), field
        assert all(r.backend == name for r in solo + packed)
        # use_backend restored whatever backend the shared evaluator had
        # (the session default, which CI pins via $REPRO_GEMM_BACKEND).
        assert opt_evaluator.model.executor.backend.name == resident


# -------------------------------------------------------------- replay level
class TestReplayQuarantine:
    """Non-exact backends never share clean traces with anyone else."""

    def test_trace_keys_segregate_non_exact(self, lossy_backend, opt_quant):
        session = ReplaySession("m", store=TraceStore())
        tokens = np.arange(12) % opt_quant.config.vocab_size
        ex = opt_quant.executor
        exact_key = session.key_full(tokens, Stage.PREFILL, ex)
        with use_backend(ex, "test-lossy"):
            lossy_key = session.key_full(tokens, Stage.PREFILL, ex)
        with use_backend(ex, "numpy-int"):
            other_exact = session.key_full(tokens, Stage.PREFILL, ex)
        assert lossy_key == exact_key + "/test-lossy"
        assert other_exact == exact_key  # exact backends share one key

    def test_check_trace_backend_contract(self, lossy_backend):
        exact_ex = SimpleNamespace(backend=get_backend("numpy-f64"))
        lossy_ex = SimpleNamespace(backend=lossy_backend)
        exact_trace = SimpleNamespace(backend="numpy-int", backend_exact=True)
        lossy_trace = SimpleNamespace(backend="test-lossy", backend_exact=False)
        check_trace_backend(exact_trace, exact_ex)  # exact <-> exact: fine
        check_trace_backend(lossy_trace, lossy_ex)  # same backend: fine
        with pytest.raises(RuntimeError, match="cannot be resumed"):
            check_trace_backend(lossy_trace, exact_ex)
        with pytest.raises(RuntimeError, match="cannot be resumed"):
            check_trace_backend(exact_trace, lossy_ex)
        # pre-backend traces (no attributes at all) read as exact defaults
        check_trace_backend(SimpleNamespace(), exact_ex)

    def test_resume_refused_when_stored_trace_went_lossy(
        self, lossy_backend, opt_quant
    ):
        """End-to-end: a trace whose provenance says non-exact is refused at
        resume even when the cache key matches (attached manifests)."""
        session = ReplaySession("quarantine-test", store=TraceStore())
        tokens = np.stack(
            [np.arange(16) % opt_quant.config.vocab_size for _ in range(2)]
        )
        with use_backend(opt_quant.executor, "numpy-f64"):
            with opt_quant.replay_into(session):
                clean = opt_quant.forward_full(tokens)  # records under numpy-f64
        key = session.key_full(tokens, Stage.PREFILL, opt_quant.executor)
        trace = session.store.get(key)
        assert trace is not None and trace.backend == "numpy-f64"
        assert trace.backend_exact is True
        # exact <-> exact reuse stays bit-identical
        with use_backend(opt_quant.executor, "numpy-int"):
            with opt_quant.replay_into(session):
                np.testing.assert_array_equal(
                    clean, opt_quant.forward_full(tokens)
                )
        # forge non-exact provenance onto the stored trace: refused
        trace.backend = "test-lossy"
        trace.backend_exact = False
        with pytest.raises(RuntimeError, match="test-lossy"):
            with opt_quant.replay_into(session):
                opt_quant.forward_full(tokens)


# ------------------------------------------------------------ campaign level
class TestCampaignBackend:
    def test_exact_backend_never_changes_trial_keys(self):
        spec = CampaignSpec(
            name="k", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0, 1),
        )
        import dataclasses

        pinned = dataclasses.replace(spec, backend="numpy-int")
        assert [t.key for t in spec.expand()] == [t.key for t in pinned.expand()]
        assert all(t.backend is None for t in pinned.expand())

    def test_non_exact_backend_stamps_trial_identity(self, lossy_backend):
        spec = CampaignSpec(
            name="k", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0,), backend="test-lossy",
        )
        (trial,) = spec.expand()
        assert trial.backend == "test-lossy"
        assert "test-lossy" in trial.cell_label
        import dataclasses

        (plain,) = dataclasses.replace(spec, backend=None).expand()
        assert trial.key != plain.key
        assert Trial.from_dict(trial.to_dict()).key == trial.key

    def test_unknown_backend_rejected_at_spec_validation(self):
        with pytest.raises(KeyError, match="no-such-kernel"):
            CampaignSpec(
                name="k", models=("opt-mini",),
                sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
                errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
                backend="no-such-kernel",
            )

    def test_spec_backend_round_trips_through_json(self):
        spec = CampaignSpec(
            name="k", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            backend="numpy-int",
        )
        assert CampaignSpec.from_dict(spec.to_dict()).backend == "numpy-int"

    @pytest.mark.parametrize("workers", [0, 2])
    def test_campaign_runs_under_pinned_backend(
        self, tmp_path, opt_bundle, workers
    ):
        """The selection reaches (pool) workers and lands in provenance —
        and the results dedup against the default-backend run (exact)."""
        spec = CampaignSpec(
            name="b", models=("opt-mini",),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0, 1), backend="numpy-int",
        )
        with ResultStore(tmp_path / "c") as store:
            report = run_campaign(spec, store, workers=workers)
            assert (report.executed, report.failed) == (2, 0)
            for record in store.records():
                assert record.result.backend == "numpy-int"
            import dataclasses

            unpinned = dataclasses.replace(spec, backend=None)
            assert run_campaign(unpinned, store, workers=0).cached == 2
