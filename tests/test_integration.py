"""Cross-module integration and failure-injection tests.

These exercise full paths a downstream user would hit: model-level runs on
the systolic array, protectors inside the inference engine, zoo cache
robustness, and end-to-end invariants that tie several subsystems together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.checksums import checksum_report
from repro.abft.protectors import ClassicalABFT, StatisticalABFT
from repro.abft.region import CriticalRegion
from repro.circuits.voltage import VoltageBerModel
from repro.data.tasks import build_lm_data
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, GemmSite, SiteFilter, Stage
from repro.evalsuite.harness import evaluate_perplexity
from repro.models.export import quantize_model
from repro.quant.quantizer import quantize_activation
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import IS, OS, WS
from repro.training.zoo import _cache_path, get_pretrained


class TestModelGemmOnSystolicArray:
    """The model-level GEMM path and the tile-level array path must agree
    on fault-free results (same integer semantics)."""

    def test_model_weights_through_array(self, opt_bundle, opt_quant, rng):
        layer = opt_quant.layers[0]
        weight = layer["wq"]
        x = rng.normal(size=(16, opt_bundle.config.d_model))
        a_q, a_params = quantize_activation(x)
        for dataflow in (WS, OS, IS):
            array = SystolicArray(8, dataflow)
            tiled, report = array.gemm(a_q, weight.q)
            monolithic = a_q.astype(np.int64) @ weight.q.astype(np.int64)
            np.testing.assert_array_equal(tiled, monolithic)
            assert report.macs == a_q.shape[0] * a_q.shape[1] * weight.q.shape[1]


class TestProtectorInsideEngine:
    def test_statistical_abft_keeps_perplexity_within_budget(self, opt_bundle):
        """End to end: fit regions offline, attach the protector, inject at
        a harsh BER, and verify the surviving degradation is within budget
        while recovery stays below classical's."""
        from repro.characterization.evaluator import ModelEvaluator
        from repro.characterization.fitting import fit_component_region

        evaluator = ModelEvaluator(opt_bundle, "perplexity")
        budget = 0.3
        regions = {}
        for component in (Component.O, Component.FC2):
            region, _ = fit_component_region(
                evaluator, component, budget,
                mags=(2**10, 2**18, 2**26), freqs=(1, 16, 256),
            )
            regions[component.value] = region
        # resilient components: permissive region (never recover)
        for component in (Component.Q, Component.K, Component.V,
                          Component.QKT, Component.SV, Component.FC1):
            regions[component.value] = CriticalRegion(
                a=1.05, b=-8.0, theta_freq=10**9, kind="resilient"
            )

        ber = 3e-4
        ours = StatisticalABFT(regions)
        score_ours = evaluator.run(ErrorInjector(BitFlipModel(ber), seed=1), ours)
        classical = ClassicalABFT()
        evaluator.run(ErrorInjector(BitFlipModel(ber), seed=1), classical)

        assert evaluator.degradation(score_ours) <= budget + 0.05
        assert ours.stats.recovered < classical.stats.recovered

    def test_voltage_model_drives_model_level_failure(self, opt_bundle):
        """BER(V) + injection + evaluation compose: at nominal-ish voltage
        nothing happens; deep underscaling destroys perplexity."""
        model = quantize_model(
            opt_bundle.state, opt_bundle.config,
            calibration=[r for r in opt_bundle.source.sample_batch(2, 32, key="calibration")],
        )
        lm = build_lm_data(opt_bundle.source, 3, 24)
        vm = VoltageBerModel()
        clean = evaluate_perplexity(model, lm)
        for voltage, should_degrade in ((0.84, False), (0.58, True)):
            model.attach(ErrorInjector(BitFlipModel(vm.ber(voltage)), seed=2), None)
            try:
                score = evaluate_perplexity(model, lm)
            finally:
                model.attach(None, None)
            degraded = score > clean + 1.0
            assert degraded == should_degrade, voltage


class TestZooCacheFailureInjection:
    def test_corrupted_cache_triggers_retrain(self, opt_bundle, tmp_path, monkeypatch):
        """A truncated/garbage cache file must not crash get_pretrained —
        it should fall back to retraining (fresh, equivalent bundle)."""
        import repro.training.zoo as zoo

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        path = zoo._cache_path("opt-mini", 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        try:
            bundle = zoo.get_pretrained("opt-mini")
        except Exception as err:  # noqa: BLE001 - any clean error is fine too
            pytest.fail(f"corrupted cache crashed get_pretrained: {err}")
        assert bundle.final_loss == pytest.approx(opt_bundle.final_loss, abs=1e-9)


class TestChecksumEngineConsistency:
    def test_engine_reports_match_offline_checksums(self, opt_bundle, rng):
        """The protector inside the engine must see exactly the checksum
        report an offline computation produces for the same corruption."""
        captured = {}

        class Spy(ClassicalABFT):
            def should_recover(self, report, site):
                captured.setdefault(str(site), report)
                return super().should_recover(report, site)

        model = quantize_model(
            opt_bundle.state, opt_bundle.config,
            calibration=[r for r in opt_bundle.source.sample_batch(1, 16, key="calibration")],
        )
        injector = ErrorInjector(
            BitFlipModel(1e-3), SiteFilter.only(components=[Component.Q]), seed=5
        )
        model.attach(injector, Spy())
        model.forward_full(np.arange(12) % opt_bundle.config.vocab_size)
        model.attach(None, None)
        q_sites = [k for k in captured if "/Q/" in k]
        assert q_sites
        report = captured[q_sites[0]]
        assert report.msd == int(np.abs(report.diffs).sum())
