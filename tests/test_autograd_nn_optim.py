"""Tests for the nn module system and the optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.nn import Embedding, LayerNorm, Linear, Module, ModuleList, Parameter, RMSNorm
from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.utils.seeding import derive_rng


class TinyNet(Module):
    def __init__(self, rng):
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.blocks = ModuleList([Linear(2, 2, rng) for _ in range(2)])

    def forward(self, x):
        h = self.fc1(x).relu()
        h = self.fc2(h)
        for block in self.blocks:
            h = block(h)
        return h


class TestModuleSystem:
    def test_named_parameters_cover_nested_modules(self):
        net = TinyNet(derive_rng(0, "t"))
        names = {n for n, _ in net.named_parameters()}
        assert "fc1.weight" in names and "fc1.bias" in names
        assert "blocks.0.weight" in names and "blocks.1.bias" in names
        assert len(names) == 8

    def test_state_dict_roundtrip(self):
        net = TinyNet(derive_rng(0, "a"))
        other = TinyNet(derive_rng(1, "b"))
        other.load_state_dict(net.state_dict())
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(net(x).numpy(), other(x).numpy())

    def test_load_state_dict_rejects_mismatch(self):
        net = TinyNet(derive_rng(0, "a"))
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        net = TinyNet(derive_rng(0, "a"))
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_num_parameters(self):
        net = TinyNet(derive_rng(0, "a"))
        assert net.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2) + 2 * (2 * 2 + 2)

    def test_zero_grad_clears(self):
        net = TinyNet(derive_rng(0, "a"))
        net(Tensor(np.ones((1, 4)))).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(6, 3, derive_rng(0, "l"))
        out = layer(Tensor(np.ones((5, 6))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(6, 3, derive_rng(0, "l"), bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 6))))
        np.testing.assert_allclose(out.numpy(), np.zeros((2, 3)))

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, derive_rng(0, "e"))
        out = emb(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.numpy()[0, 0], emb.weight.numpy()[1])

    def test_norm_layers_learnable(self):
        ln = LayerNorm(8)
        rms = RMSNorm(8)
        assert len(list(ln.named_parameters())) == 2
        assert len(list(rms.named_parameters())) == 1


class TestOptimizers:
    def _quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        return p

    def test_sgd_converges_on_quadratic(self):
        p = self._quadratic()
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-6)

    def test_sgd_momentum_converges(self):
        p = self._quadratic()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-4)

    def test_adam_converges_on_quadratic(self):
        p = self._quadratic()
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.numpy(), [0.0, 0.0], atol=1e-3)

    def test_adam_weight_decay_shrinks_weights(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=10.0)
        for _ in range(50):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(float(p.numpy()[0])) < 1.0

    def test_empty_optimizer_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_clip_grad_norm(self):
        p = Parameter(np.array([3.0, 4.0]))
        p.grad = np.array([3.0, 4.0])
        total = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(total, 5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.array([0.3]))
        p.grad = np.array([0.3])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3])
