"""Tests for the energy model and sweet-spot search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.model import EnergyBreakdown, EnergyModel, EnergyParams
from repro.energy.sweetspot import RunOutcome, VoltagePoint, find_sweet_spot, sweep_voltages


class TestEnergyModel:
    def test_compute_scales_with_v_squared(self):
        model = EnergyModel(EnergyParams())
        full = model.total_j(10**9, 0, 0.9)
        half = model.total_j(10**9, 0, 0.45)
        assert full / half == pytest.approx(4.0)

    def test_recovery_charged_at_nominal(self):
        model = EnergyModel(EnergyParams(e_mac_pj=1.0))
        breakdown = model.breakdown(macs=0, recovered_macs=10**6, voltage=0.6)
        assert breakdown.recovery_j == pytest.approx(1e-12 * 10**6)

    def test_detection_overhead_fraction(self):
        model = EnergyModel(EnergyParams(detection_overhead=0.02))
        b = model.breakdown(10**6, 0, 0.9)
        assert b.detection_j == pytest.approx(0.02 * b.compute_j)

    def test_dmr_doubles_compute(self):
        plain = EnergyModel(EnergyParams()).total_j(10**6, 0, 0.8)
        dmr = EnergyModel(EnergyParams(compute_factor=2.0)).total_j(10**6, 0, 0.8)
        assert dmr == pytest.approx(2 * plain)

    def test_total_is_sum_of_parts(self):
        model = EnergyModel(EnergyParams(detection_overhead=0.05))
        b = model.breakdown(10**6, 10**4, 0.7)
        assert b.total_j == pytest.approx(b.compute_j + b.detection_j + b.recovery_j)

    def test_invalid_inputs_rejected(self):
        model = EnergyModel(EnergyParams())
        with pytest.raises(ValueError):
            model.total_j(-1, 0, 0.9)
        with pytest.raises(ValueError):
            model.mac_energy_j(0.0)


class TestSweetSpot:
    def _points(self):
        """U-shaped energy: infeasible at the lowest voltages."""
        rows = []
        for v, e, deg in [(0.9, 10.0, 0.0), (0.8, 8.0, 0.0), (0.7, 6.0, 0.1),
                          (0.65, 7.0, 0.2), (0.6, 5.0, 9.0)]:
            rows.append(VoltagePoint(voltage=v, ber=0.0, metric=0.0, degradation=deg,
                                     recovery_rate=0.0, energy_j=e, feasible=deg <= 0.3))
        return rows

    def test_picks_min_energy_feasible(self):
        best = find_sweet_spot(self._points())
        assert best.voltage == 0.7
        assert best.energy_j == 6.0

    def test_infeasible_points_excluded_even_if_cheaper(self):
        best = find_sweet_spot(self._points())
        assert best.energy_j > 5.0  # the 0.6V point is cheaper but infeasible

    def test_no_feasible_point_raises(self):
        points = [
            VoltagePoint(0.6, 0.0, 0.0, 5.0, 0.0, 1.0, False),
        ]
        with pytest.raises(ValueError):
            find_sweet_spot(points)

    def test_sweep_voltages_assembles_points(self):
        energy_model = EnergyModel(EnergyParams())

        def evaluate(v):
            return RunOutcome(degradation=0.0 if v > 0.7 else 1.0,
                              macs=10**6, recovered_macs=0, metric=2.5)

        points = sweep_voltages(
            evaluate, [0.9, 0.8, 0.6], energy_model, budget=0.3, ber_of=lambda v: 1e-6
        )
        assert len(points) == 3
        assert points[0].feasible and not points[2].feasible
        assert points[0].energy_j > points[2].energy_j  # lower V cheaper
