"""Tests for the W8A8 quantization substrate, including hypothesis
round-trip and accumulator-semantics properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant.gemm import INT32_MAX, INT32_MIN, gemm_int32, saturate_int32, wrap_int32
from repro.quant.quantizer import (
    INT8_MAX,
    QuantParams,
    dequantize,
    quantize_activation,
    quantize_weight_per_channel,
    quantize_with_scale,
    requantize_int32_to_int8,
)

floats_2d = arrays(
    np.float64,
    (4, 6),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


class TestQuantizers:
    @given(floats_2d)
    @settings(max_examples=40, deadline=None)
    def test_activation_roundtrip_error_bounded(self, x):
        q, params = quantize_activation(x)
        restored = dequantize(q, params)
        max_abs = np.max(np.abs(x))
        # round-to-nearest => error at most half an LSB
        assert np.max(np.abs(restored - x)) <= max_abs / INT8_MAX * 0.51 + 1e-12

    def test_activation_codes_in_range(self, rng):
        q, _ = quantize_activation(rng.normal(size=(8, 8)) * 50)
        assert q.dtype == np.int8
        assert q.min() >= -INT8_MAX and q.max() <= INT8_MAX

    def test_zero_tensor_gets_unit_scale(self):
        q, params = quantize_activation(np.zeros((3, 3)))
        assert np.all(q == 0)
        np.testing.assert_allclose(params.scale, 1.0)

    def test_weight_per_channel_scales(self, rng):
        w = rng.normal(size=(6, 4))
        w[:, 2] *= 100.0
        q, params = quantize_weight_per_channel(w)
        assert params.per_channel
        assert params.scale.shape == (4,)
        # each column uses its own scale => all columns hit full range
        assert np.abs(q).max(axis=0).min() >= INT8_MAX - 1

    def test_weight_quantizer_rejects_non_2d(self):
        with pytest.raises(ValueError):
            quantize_weight_per_channel(np.zeros((2, 2, 2)))

    def test_static_scale_saturates_outliers(self):
        """The Fig. 4c mechanism: out-of-range values clip at the boundary
        instead of inflating the scale."""
        x = np.array([1.0, -2.0, 1e9])
        q, params = quantize_with_scale(x, scale=0.05)
        assert q[2] == INT8_MAX
        restored = dequantize(q, params)
        np.testing.assert_allclose(restored[:2], [1.0, -2.0], atol=0.05)
        assert restored[2] == pytest.approx(INT8_MAX * 0.05)

    def test_static_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            quantize_with_scale(np.ones(3), 0.0)

    def test_requantize_int32_to_int8(self):
        acc = np.array([[1000, -500, 20]], dtype=np.int64)
        q, params = requantize_int32_to_int8(acc, acc_scale=0.01)
        restored = dequantize(q, params)
        np.testing.assert_allclose(restored, acc * 0.01, atol=0.1)


class TestAccumulatorSemantics:
    def test_wrap_int32_identity_in_range(self):
        x = np.array([0, 1, -1, INT32_MAX, INT32_MIN], dtype=np.int64)
        np.testing.assert_array_equal(wrap_int32(x), x)

    def test_wrap_int32_overflow(self):
        np.testing.assert_array_equal(
            wrap_int32(np.array([INT32_MAX + 1])), [INT32_MIN]
        )
        np.testing.assert_array_equal(
            wrap_int32(np.array([INT32_MIN - 1])), [INT32_MAX]
        )

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=100, deadline=None)
    def test_wrap_is_mod_2_32(self, value):
        wrapped = int(wrap_int32(np.array([value]))[0])
        assert (wrapped - value) % 2**32 == 0
        assert INT32_MIN <= wrapped <= INT32_MAX

    def test_saturate_clamps(self):
        x = np.array([INT32_MAX + 10, INT32_MIN - 10, 5], dtype=np.int64)
        np.testing.assert_array_equal(
            saturate_int32(x), [INT32_MAX, INT32_MIN, 5]
        )

    def test_gemm_matches_exact_for_small_operands(self, rng):
        a = rng.integers(-127, 128, size=(5, 7)).astype(np.int8)
        b = rng.integers(-127, 128, size=(7, 3)).astype(np.int8)
        out = gemm_int32(a, b)
        np.testing.assert_array_equal(out, a.astype(np.int64) @ b.astype(np.int64))

    def test_gemm_wraparound_on_constructed_overflow(self):
        # k = 2^18 rows of 127*127 exceeds INT32_MAX => must wrap, not clip
        k = 2**18
        a = np.full((1, k), 127, dtype=np.int64)
        b = np.full((k, 1), 127, dtype=np.int64)
        exact = 127 * 127 * k
        assert exact > INT32_MAX
        wrapped = gemm_int32(a, b)[0, 0]
        assert (int(wrapped) - exact) % 2**32 == 0
        saturated = gemm_int32(a, b, wraparound=False)[0, 0]
        assert saturated == INT32_MAX

    @given(
        arrays(np.int8, (3, 4), elements=st.integers(-127, 127)),
        arrays(np.int8, (4, 2), elements=st.integers(-127, 127)),
    )
    @settings(max_examples=50, deadline=None)
    def test_gemm_results_always_in_int32_range(self, a, b):
        out = gemm_int32(a, b)
        assert out.min() >= INT32_MIN and out.max() <= INT32_MAX
