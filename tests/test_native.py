"""Native C kernel, weight-prepack cache, and autotuned dispatch
(DESIGN.md section 13).

The cross-backend *conformance* of ``native`` and ``auto`` (bit-equality
with the oracle, overflow semantics, engine end-to-end equality) is
covered by the registry-parametrized suite in ``tests/test_backends.py``
— both are registered at import time, so they are picked up there
automatically. This file covers what the shared suite cannot: the
compile/cache/degrade machinery, the prepack cache's keying and
mutation invalidation, and the winner table's persistence rules.

Tests that need a real compiler skip cleanly on hosts without one (the
degrade-path tests are exactly the opposite: they *simulate* such
hosts and must pass everywhere).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.dispatch.backends import (
    PREPACK,
    get_backend,
    resolve_backend,
)
from repro.dispatch.backends.auto import AutoBackend, shape_class
from repro.dispatch.backends.native import (
    ENV_CC,
    ENV_DISABLE,
    ENV_LIB,
    NativeBackend,
    SOURCE_PATH,
    _find_compiler,
    compile_kernel,
)
from repro.dispatch.backends.prepack import PrepackCache

HAVE_CC = _find_compiler() is not None

needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on host")


def _oracle(a, b):
    return a.astype(np.int64) @ b.astype(np.int64)


def _fresh_native(monkeypatch, tmp_path, **env):
    """A NativeBackend forced onto the runtime-compile path with an
    isolated cache dir (no prebuilt extension, no shared state)."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
    monkeypatch.delenv(ENV_LIB, raising=False)
    monkeypatch.delenv(ENV_DISABLE, raising=False)
    monkeypatch.delenv(ENV_CC, raising=False)
    for key, value in env.items():
        monkeypatch.setenv(key, value)
    monkeypatch.setattr(
        "repro.dispatch.backends.native._prebuilt_extension", lambda: None
    )
    return NativeBackend()


# --------------------------------------------------------------------------
# Compile / cache / load paths
# --------------------------------------------------------------------------
@needs_cc
class TestNativeCompile:
    def test_runtime_compile_and_exactness(self, monkeypatch, tmp_path, rng):
        backend = _fresh_native(monkeypatch, tmp_path)
        assert backend.available(), backend.why_unavailable()
        assert backend.kernel().startswith("c-int8")
        a = rng.integers(-128, 128, size=(7, 130), dtype=np.int8)
        b = rng.integers(-128, 128, size=(130, 33), dtype=np.int8)
        np.testing.assert_array_equal(backend.product_int64(a, b), _oracle(a, b))

    def test_compiled_library_is_cached_and_reused(self, monkeypatch, tmp_path):
        first = _fresh_native(monkeypatch, tmp_path)
        assert first.available()
        [lib] = list((tmp_path / "cache").rglob("*.so"))
        stamp = lib.stat().st_mtime_ns

        second = _fresh_native(monkeypatch, tmp_path)
        assert second.available()
        assert "cc-cache" in second.kernel()
        assert lib.stat().st_mtime_ns == stamp  # loaded, not recompiled

    def test_corrupt_cached_library_recompiles(self, monkeypatch, tmp_path):
        from repro.dispatch.backends import native as native_mod

        # Plant garbage at the digest path *before* anything dlopens it
        # (overwriting an already-mapped .so would SIGBUS the process,
        # which is exactly why the loader replaces, never rewrites).
        backend = _fresh_native(monkeypatch, tmp_path)
        digest = native_mod._source_digest(
            SOURCE_PATH.read_bytes(), _find_compiler()
        )
        lib = native_mod.build_dir() / f"gemm_int8-{digest}.so"
        lib.parent.mkdir(parents=True, exist_ok=True)
        lib.write_bytes(b"not an ELF shared object")

        assert backend.available(), backend.why_unavailable()
        assert backend._kernel.origin == "cc"  # recompiled, not cache-loaded
        assert lib.read_bytes() != b"not an ELF shared object"

    def test_explicit_lib_env_is_authoritative(self, monkeypatch, tmp_path):
        # Build a real kernel, then point $REPRO_NATIVE_GEMM_LIB at it.
        built = tmp_path / "kernel.so"
        compile_kernel(SOURCE_PATH, built, _find_compiler())
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_LIB: str(built)})
        assert backend.available()
        assert "env" in backend.kernel()

    def test_explicit_lib_env_failure_does_not_fall_through(
        self, monkeypatch, tmp_path
    ):
        missing = tmp_path / "nope.so"
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_LIB: str(missing)})
        # A compiler exists, but an explicit selection must not be
        # silently compiled around: unavailable, with the env var named.
        assert not backend.available()
        assert ENV_LIB in backend.why_unavailable()


# --------------------------------------------------------------------------
# Degrade paths (simulated compiler-less hosts — run everywhere)
# --------------------------------------------------------------------------
class TestNativeDegrade:
    def test_disabled_env_reports_unavailable(self, monkeypatch, tmp_path):
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_DISABLE: "1"})
        assert not backend.available()
        assert ENV_DISABLE in backend.why_unavailable()

    def test_no_compiler_reports_unavailable(self, monkeypatch, tmp_path):
        backend = _fresh_native(monkeypatch, tmp_path)
        monkeypatch.setattr(
            "repro.dispatch.backends.native._find_compiler", lambda: None
        )
        assert not backend.available()
        assert "compiler" in backend.why_unavailable()

    def test_compile_failure_reports_unavailable(self, monkeypatch, tmp_path):
        # /bin/false accepts any argv and exits 1: a universal broken cc.
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_CC: "/bin/false"})
        if _find_compiler() != "/bin/false":  # pragma: no cover - odd host
            pytest.skip("host resolves compilers before $REPRO_NATIVE_GEMM_CC")
        assert not backend.available()
        assert "failed to build" in backend.why_unavailable()

    def test_unavailable_degrades_to_exact_default(
        self, monkeypatch, tmp_path, caplog
    ):
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_DISABLE: "1"})
        with caplog.at_level("WARNING", logger="repro.dispatch.backends"):
            resolved = resolve_backend(backend)
        assert resolved.name == "numpy-f64"
        assert any(ENV_DISABLE in r.message for r in caplog.records)

    def test_unavailable_still_computes_exactly(self, monkeypatch, tmp_path, rng):
        # Even called directly (not via resolution), a kernel-less backend
        # answers through the widening matmul — never wrongly.
        backend = _fresh_native(monkeypatch, tmp_path, **{ENV_DISABLE: "1"})
        a = rng.integers(-128, 128, size=(3, 40), dtype=np.int8)
        b = rng.integers(-128, 128, size=(40, 5), dtype=np.int8)
        np.testing.assert_array_equal(backend.product_int64(a, b), _oracle(a, b))


# --------------------------------------------------------------------------
# Weight-prepack cache
# --------------------------------------------------------------------------
class TestPrepackCache:
    def _cache_and_weight(self, rng):
        cache = PrepackCache()
        w = rng.integers(-128, 128, size=(64, 16), dtype=np.int8)
        packer = lambda b: b.astype(np.float32)  # noqa: E731 - tiny mirror
        return cache, w, packer

    def test_hit_after_first_pack(self, rng):
        cache, w, packer = self._cache_and_weight(rng)
        first = cache.packed(w, "p", packer)
        second = cache.packed(w, "p", packer)
        assert first is second
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_mutation_invalidates(self, rng):
        cache, w, packer = self._cache_and_weight(rng)
        stale = cache.packed(w, "p", packer)
        w[0, 0] = np.int8(~w[0, 0])
        fresh = cache.packed(w, "p", packer)
        assert fresh is not stale
        np.testing.assert_array_equal(fresh, w.astype(np.float32))
        assert cache.stats()["invalidations"] == 1

    def test_distinct_packers_share_one_entry(self, rng):
        cache, w, packer = self._cache_and_weight(rng)
        cache.packed(w, "f32", packer)
        cache.packed(w, "i16", lambda b: b.astype(np.int16))
        assert cache.stats()["entries"] == 1
        assert cache.stats()["misses"] == 2  # one per mirror kind

    def test_non_contiguous_bypasses(self, rng):
        cache = PrepackCache()
        w = rng.integers(-128, 128, size=(32, 32), dtype=np.int8)[:, ::2]
        assert not w.flags.c_contiguous
        first = cache.packed(w, "p", lambda b: b.astype(np.float32))
        second = cache.packed(w, "p", lambda b: b.astype(np.float32))
        assert first is not second  # never cached, always correct
        assert cache.stats()["entries"] == 0

    def test_native_weight_route_uses_shared_cache(self, rng):
        backend = get_backend("native")
        if not backend.available():
            pytest.skip(backend.why_unavailable())
        w = rng.integers(-128, 128, size=(48, 24), dtype=np.int8)
        x = rng.integers(-128, 128, size=(4, 48), dtype=np.int8)
        mirror = w.astype(np.float64)
        PREPACK.reset_stats()
        base = PREPACK.stats()["entries"]
        for _ in range(3):
            np.testing.assert_array_equal(
                backend.product_int64(x, w, b_f64=mirror), _oracle(x, w)
            )
        stats = PREPACK.stats()
        assert stats["entries"] == base + 1
        assert stats["hits"] >= 2
        # Activation-side operands (no mirror) must not earn cache entries.
        backend.product_int64(x, w)
        assert PREPACK.stats()["entries"] == base + 1

    def test_mutated_weight_recomputes_through_backend(self, rng):
        backend = get_backend("native")
        if not backend.available():
            pytest.skip(backend.why_unavailable())
        w = rng.integers(-128, 128, size=(40, 20), dtype=np.int8)
        x = rng.integers(-128, 128, size=(3, 40), dtype=np.int8)
        backend.product_int64(x, w, b_f64=w.astype(np.float64))
        w[5, 7] = np.int8(~w[5, 7])  # in-place fault injection on weights
        np.testing.assert_array_equal(
            backend.product_int64(x, w, b_f64=w.astype(np.float64)),
            _oracle(x, w),
        )


# --------------------------------------------------------------------------
# Autotuned dispatch
# --------------------------------------------------------------------------
class TestAutotune:
    def _ops(self, rng):
        a = rng.integers(-127, 128, size=(8, 32), dtype=np.int8)
        b = rng.integers(-127, 128, size=(32, 16), dtype=np.int8)
        return a, b

    def test_routes_exactly_and_persists(self, tmp_path, rng):
        table = tmp_path / "table.json"
        auto = AutoBackend(table_path=table)
        a, b = self._ops(rng)
        np.testing.assert_array_equal(auto.product_int64(a, b), _oracle(a, b))
        assert table.exists()
        payload = json.loads(table.read_text())
        cls = shape_class("int32", a.shape, b.shape)
        assert payload["classes"][cls]["winner"] in payload["classes"][cls][
            "timings_us"
        ]

    def test_persisted_winner_skips_retiming(self, tmp_path, rng, monkeypatch):
        table = tmp_path / "table.json"
        a, b = self._ops(rng)
        AutoBackend(table_path=table).product_int64(a, b)

        fresh = AutoBackend(table_path=table)
        monkeypatch.setattr(
            fresh,
            "_tune_class",
            lambda *args, **kw: pytest.fail("re-tuned a persisted class"),
        )
        np.testing.assert_array_equal(fresh.product_int64(a, b), _oracle(a, b))

    def test_corrupt_table_warns_and_retunes(self, tmp_path, rng, caplog):
        table = tmp_path / "table.json"
        table.write_text("{ not json")
        auto = AutoBackend(table_path=table)
        a, b = self._ops(rng)
        with caplog.at_level("WARNING", logger="repro.dispatch.backends.auto"):
            np.testing.assert_array_equal(auto.product_int64(a, b), _oracle(a, b))
        assert any("unreadable" in r.message for r in caplog.records)
        assert json.loads(table.read_text())["classes"]  # rebuilt + persisted

    def test_vanished_winner_retunes(self, tmp_path, rng):
        table = tmp_path / "table.json"
        a, b = self._ops(rng)
        cls = shape_class("int32", a.shape, b.shape)
        table.write_text(
            json.dumps(
                {
                    "abi": 1,
                    "classes": {cls: {"winner": "ghost-kernel", "timings_us": {}}},
                }
            )
        )
        auto = AutoBackend(table_path=table)
        np.testing.assert_array_equal(auto.product_int64(a, b), _oracle(a, b))
        assert auto.classes()[cls]["winner"] != "ghost-kernel"

    def test_candidates_are_exact_backends_only(self):
        auto = get_backend("auto")
        for candidate in auto._candidates():
            assert candidate.exact
            assert candidate.name != "auto"

    def test_shape_class_buckets_rows_only(self):
        # Exact (k, n), pow2-bucketed rows, route and stacking split out.
        assert shape_class("f64", (5, 32), (32, 16)) == "f64:m8:k32:n16"
        assert shape_class("f64", (2, 3, 32), (32, 16)) == "f64:m8:k32:n16"
        assert shape_class("int32", (8, 32), (32, 16)) == "int32:m8:k32:n16"
        assert (
            shape_class("f64", (2, 4, 16), (2, 16, 8)) == "f64:m8:k16:n8:stacked"
        )

    def test_unwritable_table_still_routes(self, tmp_path, rng, caplog):
        # The table's parent "directory" is a plain file, so persisting
        # raises OSError on every host (chmod tricks don't bind as root).
        blocker = tmp_path / "ro"
        blocker.write_text("")
        auto = AutoBackend(table_path=blocker / "table.json")
        a, b = self._ops(rng)
        with caplog.at_level("WARNING", logger="repro.dispatch.backends.auto"):
            np.testing.assert_array_equal(auto.product_int64(a, b), _oracle(a, b))
        assert any("persist" in r.message for r in caplog.records)
