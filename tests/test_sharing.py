"""Shared-memory pack lifecycle tests (attach/detach/unlink failure paths).

`repro.models.sharing` publishes calibrated engines + clean traces into
``multiprocessing.shared_memory`` for campaign workers. The happy path is
covered by ``tests/test_replay.py``; this file covers the lifecycle edges:
unlink-on-close, double close, attach after unlink, attach failure falling
back to a worker-local rebuild, pool-creation failure unlinking freshly
published packs, and a worker dying while attached.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.characterization.evaluator import _bundle_fingerprint, quantized_model_for
from repro.models import sharing
from repro.models.sharing import attach_model, publish_bundle


def _publish(opt_bundle):
    fingerprint = _bundle_fingerprint(opt_bundle)
    return publish_bundle(fingerprint, quantized_model_for(opt_bundle))


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


class TestPackLifecycle:
    def test_close_unlinks_and_is_idempotent(self, opt_bundle):
        pack = _publish(opt_bundle)
        name = pack.manifest["shm_name"]
        assert _segment_exists(name)
        pack.close()
        assert not _segment_exists(name)
        pack.close()  # second close is a no-op, not an error

    def test_attach_after_unlink_raises(self, opt_bundle):
        pack = _publish(opt_bundle)
        pack.close()
        with pytest.raises(FileNotFoundError):
            attach_model(pack.manifest)

    def test_attach_keeps_segment_alive_for_process(self, opt_bundle):
        """Attached segments are pinned in ``_ATTACHED``: dropping the model
        must not invalidate other views into the same mapping."""
        pack = _publish(opt_bundle)
        try:
            before = len(sharing._ATTACHED)
            model = attach_model(pack.manifest)
            assert len(sharing._ATTACHED) == before + 1
            assert sharing._ATTACHED[-1].name == pack.manifest["shm_name"]
            del model  # views may be garbage collected; the mapping survives
            assert sharing._ATTACHED[-1].name == pack.manifest["shm_name"]
        finally:
            pack.close()


class TestWorkerFailurePaths:
    def test_worker_init_attach_failure_falls_back(self):
        """A worker whose attach fails must rebuild, not crash the pool."""
        from repro.campaigns.executor import _worker_init

        bogus = {"shm_name": "repro-does-not-exist", "fingerprint": "x"}
        _worker_init([bogus])  # logs a warning; must not raise

    def test_pool_creation_failure_unlinks_published_packs(
        self, tmp_path, opt_bundle, monkeypatch
    ):
        """If the pool cannot start after packs were published, the parent
        must unlink them — otherwise they outlive the process in /dev/shm."""
        from repro.campaigns import executor
        from repro.campaigns.spec import CampaignSpec, ErrorSpec, SiteSpec
        from repro.campaigns.store import ResultStore

        published: list[str] = []
        real_build = executor._build_shared_packs

        def capturing_build(needed):
            packs = real_build(needed)
            if packs:
                published.extend(p.manifest["shm_name"] for p in packs)
            return packs

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("no pool for you")

        monkeypatch.setattr(executor, "_build_shared_packs", capturing_build)
        monkeypatch.setattr(executor, "_PoolRunner", ExplodingPool)
        spec = CampaignSpec(
            name="pool-fail",
            models=(opt_bundle.name,),
            sites=(SiteSpec.only(components=["O"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
        )
        with ResultStore(str(tmp_path / "store")) as store:
            with pytest.raises(RuntimeError, match="no pool"):
                executor.run_campaign(spec, store, workers=2)
        assert published, "shared packs should have been published"
        for name in published:
            assert not _segment_exists(name), f"leaked segment {name}"

    def test_worker_crash_while_attached_does_not_block_unlink(self, opt_bundle):
        """A worker that dies hard while attached must not stop the parent
        from unlinking, and the segment must actually disappear."""
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork to simulate an abrupt worker death")
        ctx = multiprocessing.get_context("fork")
        pack = _publish(opt_bundle)

        def crash(manifest):
            from repro.models.sharing import attach_bundle

            attach_bundle(manifest)
            os._exit(1)  # simulate a hard crash: no cleanup, no atexit

        proc = ctx.Process(target=crash, args=(pack.manifest,))
        proc.start()
        proc.join(timeout=60)
        assert proc.exitcode == 1
        name = pack.manifest["shm_name"]
        pack.close()
        assert not _segment_exists(name)


class TestAttachedEngineIsolation:
    def test_attached_engine_weights_are_read_only(self, opt_bundle):
        pack = _publish(opt_bundle)
        try:
            model = attach_model(pack.manifest)
            with pytest.raises((ValueError, RuntimeError)):
                model.embed[0, 0] = 1.0
            with pytest.raises((ValueError, RuntimeError)):
                model.layers[0]["wq"].q[0, 0] = 1
            tokens = np.arange(8) % model.config.vocab_size
            np.testing.assert_array_equal(
                quantized_model_for(opt_bundle).forward_full(tokens),
                model.forward_full(tokens),
            )
        finally:
            pack.close()


class TestBackendProvenance:
    def test_manifest_carries_and_restores_backend(self, opt_bundle):
        from repro.dispatch.backends import get_backend, use_backend

        model = quantized_model_for(opt_bundle)
        with use_backend(model.executor, "numpy-int"):
            pack = _publish(opt_bundle)
        try:
            assert pack.manifest["backend"] == "numpy-int"
            attached = attach_model(pack.manifest)
            assert attached.executor.backend.name == "numpy-int"
        finally:
            pack.close()

    def test_unknown_backend_in_manifest_degrades_with_warning(
        self, opt_bundle, caplog
    ):
        """A worker lacking the parent's backend must fall back to the exact
        default with a WARNING — slower answers, never wrong ones."""
        pack = _publish(opt_bundle)
        try:
            manifest = dict(pack.manifest)
            manifest["backend"] = "numba-only-elsewhere"
            with caplog.at_level("WARNING", logger="repro.dispatch.backends"):
                attached = attach_model(manifest)
            assert attached.executor.backend.name == "numpy-f64"
            assert any(
                "numba-only-elsewhere" in r.message for r in caplog.records
            )
            tokens = np.arange(8) % attached.config.vocab_size
            np.testing.assert_array_equal(
                quantized_model_for(opt_bundle).forward_full(tokens),
                attached.forward_full(tokens),
            )
        finally:
            pack.close()

    def test_attached_traces_resume_exact_and_refuse_lossy(self, opt_bundle):
        """Shared-memory worker path: attached trace metas round-trip backend
        provenance; exact<->exact resume is bit-identical, non-exact refused."""
        from repro.characterization.evaluator import ModelEvaluator
        from repro.dispatch.backends import (
            GemmBackend,
            register_backend,
            unregister_backend,
        )
        from repro.models.replay import TRACES
        from repro.models.sharing import attach_traces

        fingerprint = _bundle_fingerprint(opt_bundle)
        evaluator = ModelEvaluator(opt_bundle, "perplexity", replay=True)
        evaluator.clean_score  # record traces under the global store
        traces = {k: t for k, t in TRACES.items() if k.startswith(fingerprint)}
        assert traces, "clean scoring should have recorded traces"
        pack = publish_bundle(fingerprint, evaluator.model, traces)
        try:
            rebuilt = attach_traces(pack.manifest)
            for key, trace in rebuilt.items():
                assert trace.backend == traces[key].backend
                assert trace.backend_exact is True
            # a non-exact executor must refuse every attached exact trace
            class _Lossy(GemmBackend):
                name = "test-shm-lossy"
                exact = False

                def product_int64(self, a_q, b_q, b_f64=None):
                    return a_q.astype(np.int64) @ b_q.astype(np.int64)

            from repro.models.replay import check_trace_backend

            lossy = register_backend(_Lossy())
            try:
                ex = type("E", (), {"backend": lossy})()
                for trace in rebuilt.values():
                    with pytest.raises(RuntimeError, match="test-shm-lossy"):
                        check_trace_backend(trace, ex)
            finally:
                unregister_backend("test-shm-lossy")
        finally:
            pack.close()
