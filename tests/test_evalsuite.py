"""Tests for metrics and the evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.tasks import (
    build_gsm8k_like,
    build_hellaswag_like,
    build_lambada_like,
    build_lm_data,
    build_xsum_like,
)
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, SiteFilter
from repro.evalsuite.harness import (
    EvalHarness,
    evaluate_last_token_accuracy,
    evaluate_multiple_choice,
    evaluate_perplexity,
)
from repro.evalsuite.metrics import accuracy, exact_match, perplexity_from_nll, rouge1


class TestMetrics:
    def test_perplexity_from_nll(self):
        assert perplexity_from_nll([0.0, 0.0]) == pytest.approx(1.0)
        assert perplexity_from_nll([np.log(4.0)]) == pytest.approx(4.0)

    def test_perplexity_capped(self):
        assert perplexity_from_nll([1e6]) == pytest.approx(1e9, rel=1e-9)

    def test_perplexity_empty_rejected(self):
        with pytest.raises(ValueError):
            perplexity_from_nll([])

    def test_accuracy_percent(self):
        assert accuracy([1, 2, 3, 4], [1, 2, 0, 4]) == pytest.approx(75.0)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_rouge1_identical_is_100(self):
        assert rouge1([1, 2, 3], [1, 2, 3]) == pytest.approx(100.0)

    def test_rouge1_disjoint_is_0(self):
        assert rouge1([1, 2], [3, 4]) == 0.0

    def test_rouge1_order_invariant(self):
        assert rouge1([1, 2, 3], [3, 2, 1]) == pytest.approx(100.0)

    def test_rouge1_partial_overlap(self):
        # candidate {1,2}, reference {2,3}: overlap 1, P=R=0.5 => F1=0.5
        assert rouge1([1, 2], [2, 3]) == pytest.approx(50.0)

    def test_rouge1_counts_multiplicity(self):
        assert rouge1([5, 5], [5]) == pytest.approx(2 / 3 * 100.0)

    def test_exact_match(self):
        assert exact_match([1, 2], [1, 2])
        assert not exact_match([1, 2], [1, 3])
        assert not exact_match([1], [1, 2])


class TestHarness:
    def test_clean_model_scores_well_on_all_tasks(self, opt_bundle, opt_quant):
        source = opt_bundle.source
        ppl = evaluate_perplexity(opt_quant, build_lm_data(source, 3, 24))
        assert ppl < np.exp(source.entropy_rate()) * 2.0
        acc = evaluate_last_token_accuracy(
            opt_quant, build_lambada_like(source, 10, 12)
        )
        assert acc >= 80.0
        mc = evaluate_multiple_choice(
            opt_quant, build_hellaswag_like(source, 8, 10, 5)
        )
        assert mc >= 60.0

    def test_generation_tasks_score_perfect_against_self(self, opt_bundle, opt_quant):
        harness = EvalHarness(opt_quant)
        xsum = build_xsum_like(opt_bundle.source, 3, 10, 6)
        gsm = build_gsm8k_like(opt_bundle.source, 3, 10, 4)
        assert harness.summarization_score(opt_quant, xsum) == pytest.approx(100.0)
        assert harness.arithmetic_score(opt_quant, gsm) == pytest.approx(100.0)

    def test_generation_references_computed_fault_free(self, opt_bundle, opt_quant):
        """Even if the harness's clean model currently has an injector
        attached, references must be generated without faults."""
        harness = EvalHarness(opt_quant)
        xsum = build_xsum_like(opt_bundle.source, 2, 10, 6)
        injector = ErrorInjector(BitFlipModel(0.05), seed=1)
        opt_quant.attach(injector, None)
        try:
            score = harness.summarization_score(opt_quant, xsum)
        finally:
            opt_quant.attach(None, None)
        # the generation runs are faulty, but references were clean, so the
        # score reflects degradation rather than being trivially 100
        assert 0.0 <= score <= 100.0
        clean_again = harness.summarization_score(opt_quant, xsum)
        assert clean_again == pytest.approx(100.0)

    def test_sensitive_injection_degrades_task_scores(self, opt_bundle, opt_quant):
        source = opt_bundle.source
        lm = build_lm_data(source, 3, 24)
        clean = evaluate_perplexity(opt_quant, lm)
        injector = ErrorInjector(
            BitFlipModel(5e-3), SiteFilter.only(components=[Component.O]), seed=2
        )
        opt_quant.attach(injector, None)
        try:
            faulty = evaluate_perplexity(opt_quant, lm)
        finally:
            opt_quant.attach(None, None)
        assert faulty > clean + 0.5
