"""Tests for ABFT checksum math: exactness, error localization, wraparound
consistency — including hypothesis properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.abft.checksums import (
    checksum_report,
    column_checksum,
    input_checksum,
    two_sided_checksums,
)
from repro.quant.gemm import gemm_int32

int8_mat = lambda shape: arrays(np.int8, shape, elements=st.integers(-127, 127))


class TestChecksumExactness:
    def test_fault_free_checksums_agree(self, rng):
        a = rng.integers(-127, 128, size=(6, 9)).astype(np.int8)
        b = rng.integers(-127, 128, size=(9, 5)).astype(np.int8)
        y = gemm_int32(a, b)
        np.testing.assert_array_equal(input_checksum(a, b), column_checksum(y))

    @given(int8_mat((4, 6)), int8_mat((6, 3)))
    @settings(max_examples=60, deadline=None)
    def test_fault_free_report_is_clean(self, a, b):
        y = gemm_int32(a, b)
        report = checksum_report(a, b, y)
        assert not report.any_error
        assert report.msd == 0
        assert report.nonzero_count == 0

    def test_checksums_agree_under_wraparound(self):
        """Modular addition commutes with summation: even when accumulators
        overflow, input-side and output-side checksums match."""
        k = 2**18
        a = np.full((2, k), 127, dtype=np.int64)
        b = np.full((k, 2), 127, dtype=np.int64)
        y = gemm_int32(a, b)  # wrapped values
        np.testing.assert_array_equal(input_checksum(a, b), column_checksum(y))

    def test_two_sided_checksums_shapes(self, rng):
        a = rng.integers(-10, 10, size=(4, 7)).astype(np.int8)
        b = rng.integers(-10, 10, size=(7, 3)).astype(np.int8)
        row_side, col_side = two_sided_checksums(a, b)
        assert row_side.shape == (3,)
        assert col_side.shape == (4,)
        y = gemm_int32(a, b)
        np.testing.assert_array_equal(row_side, y.sum(axis=0))
        np.testing.assert_array_equal(col_side, y.sum(axis=1))


class TestErrorLocalization:
    def _corrupt(self, y, row, col, delta):
        bad = np.array(y)
        bad[row, col] += delta
        return bad

    def test_single_error_appears_in_its_column(self, rng):
        a = rng.integers(-50, 50, size=(5, 8)).astype(np.int8)
        b = rng.integers(-50, 50, size=(8, 6)).astype(np.int8)
        y = gemm_int32(a, b)
        report = checksum_report(a, b, self._corrupt(y, 2, 3, 1 << 20))
        assert report.nonzero_count == 1
        assert report.diffs[3] == -(1 << 20)
        assert report.msd == 1 << 20

    def test_multiple_errors_same_column_sum(self, rng):
        a = rng.integers(-50, 50, size=(5, 8)).astype(np.int8)
        b = rng.integers(-50, 50, size=(8, 6)).astype(np.int8)
        y = gemm_int32(a, b)
        bad = self._corrupt(self._corrupt(y, 0, 1, 1000), 4, 1, 500)
        report = checksum_report(a, b, bad)
        assert report.nonzero_count == 1
        assert abs(int(report.diffs[1])) == 1500

    def test_cancelling_errors_are_invisible(self, rng):
        """Aliasing limitation of column checksums: equal and opposite
        errors in one column cancel — inherent to ABFT, worth pinning."""
        a = rng.integers(-50, 50, size=(4, 4)).astype(np.int8)
        b = rng.integers(-50, 50, size=(4, 4)).astype(np.int8)
        y = gemm_int32(a, b)
        bad = self._corrupt(self._corrupt(y, 0, 2, 777), 3, 2, -777)
        assert not checksum_report(a, b, bad).any_error

    @given(
        int8_mat((3, 5)),
        int8_mat((5, 4)),
        st.integers(0, 2),
        st.integers(0, 3),
        st.integers(min_value=1, max_value=2**29),
    )
    @settings(max_examples=60, deadline=None)
    def test_msd_equals_injected_magnitude(self, a, b, row, col, delta):
        y = gemm_int32(a, b)
        bad = np.array(y)
        bad[row, col] += delta
        report = checksum_report(a, b, bad)
        assert report.msd == delta
        assert report.max_magnitude == delta

    def test_count_if_above_thresholds(self, rng):
        a = rng.integers(-50, 50, size=(4, 6)).astype(np.int8)
        b = rng.integers(-50, 50, size=(6, 6)).astype(np.int8)
        y = gemm_int32(a, b)
        bad = np.array(y)
        bad[0, 0] += 10
        bad[1, 3] += 1000
        bad[2, 5] += 100000
        report = checksum_report(a, b, bad)
        assert report.count_if_above(0) == 3
        assert report.count_if_above(10) == 2
        assert report.count_if_above(1000) == 1
        assert report.count_if_above(10**7) == 0
