"""Tests for the protector policies (classical / approx / statistical)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abft.checksums import checksum_report
from repro.abft.protectors import (
    ApproxABFT,
    ClassicalABFT,
    NoProtection,
    StatisticalABFT,
)
from repro.abft.region import CriticalRegion
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32

SITE_K = GemmSite(0, Component.K, Stage.PREFILL)
SITE_O = GemmSite(0, Component.O, Stage.PREFILL)


@pytest.fixture
def operands(rng):
    a = rng.integers(-50, 50, size=(8, 12)).astype(np.int8)
    b = rng.integers(-50, 50, size=(12, 16)).astype(np.int8)
    return a, b, gemm_int32(a, b)


def report_with_errors(a, b, y, errors):
    bad = np.array(y)
    for (row, col), delta in errors.items():
        bad[row, col] += delta
    return checksum_report(a, b, bad)


class TestNoProtection:
    def test_never_recovers(self, operands):
        a, b, y = operands
        protector = NoProtection()
        report = report_with_errors(a, b, y, {(0, 0): 1 << 25})
        assert not protector.inspect(report, SITE_K, macs=100)
        assert protector.stats.recovered == 0
        assert protector.stats.detected == 1  # detection is observed, unused


class TestClassicalABFT:
    def test_recovers_on_any_error(self, operands):
        a, b, y = operands
        protector = ClassicalABFT()
        report = report_with_errors(a, b, y, {(1, 2): 1})
        assert protector.inspect(report, SITE_K, macs=123)
        assert protector.stats.recovered_macs == 123

    def test_clean_gemm_not_recovered(self, operands):
        a, b, y = operands
        protector = ClassicalABFT()
        assert not protector.inspect(checksum_report(a, b, y), SITE_K, macs=10)

    def test_recovery_rate(self, operands):
        a, b, y = operands
        protector = ClassicalABFT()
        protector.inspect(checksum_report(a, b, y), SITE_K, 10)
        protector.inspect(report_with_errors(a, b, y, {(0, 0): 5}), SITE_K, 10)
        assert protector.stats.recovery_rate == pytest.approx(0.5)


class TestApproxABFT:
    def test_threshold_semantics(self, operands):
        a, b, y = operands
        protector = ApproxABFT(msd_threshold=1000)
        small = report_with_errors(a, b, y, {(0, 0): 999})
        large = report_with_errors(a, b, y, {(0, 0): 1001})
        assert not protector.inspect(small, SITE_K, 10)
        assert protector.inspect(large, SITE_K, 10)

    def test_frequency_blindness(self, operands):
        """ApproxABFT cannot distinguish one large error from many small
        ones at equal MSD — the paper's core criticism (Sec. II-C)."""
        a, b, y = operands
        protector = ApproxABFT(msd_threshold=500)
        one_large = report_with_errors(a, b, y, {(0, 0): 512})
        many_small = report_with_errors(
            a, b, y, {(i, i): 32 for i in range(8)}  # 8 x 64... adjust below
        )
        # both exceed the MSD threshold: identical decisions
        assert protector.inspect(one_large, SITE_K, 10)
        assert protector.inspect(many_small, SITE_K, 10) == (many_small.msd > 500)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ApproxABFT(-1)


class TestStatisticalABFT:
    def _protector(self, theta_freq=4.0):
        regions = {
            "K": CriticalRegion(a=1.5, b=14.0, theta_freq=theta_freq, kind="resilient"),
            "O": CriticalRegion(a=1.5, b=2.0, theta_freq=0.0, kind="sensitive"),
        }
        return StatisticalABFT(regions)

    def test_clean_report_never_recovers(self, operands):
        a, b, y = operands
        assert not self._protector().inspect(checksum_report(a, b, y), SITE_K, 10)

    def test_sporadic_large_errors_tolerated_on_resilient(self, operands):
        """Few large errors stay under theta_freq => no recovery (Insight 2)."""
        a, b, y = operands
        report = report_with_errors(a, b, y, {(0, 0): 1 << 26, (1, 5): 1 << 26})
        assert not self._protector(theta_freq=4.0).inspect(report, SITE_K, 10)

    def test_frequent_significant_errors_recovered(self, operands):
        a, b, y = operands
        errors = {(i % 8, i): 1 << 22 for i in range(12)}
        report = report_with_errors(a, b, y, errors)
        assert self._protector(theta_freq=4.0).inspect(report, SITE_K, 10)

    def test_frequent_tiny_errors_ignored(self, operands):
        """Many sub-threshold errors produce freq_eff = 0 (Insight 2's other
        branch: frequent small errors are harmless)."""
        a, b, y = operands
        errors = {(i % 8, i): 3 for i in range(16)}
        report = report_with_errors(a, b, y, errors)
        protector = self._protector(theta_freq=0.0)
        # theta_mag for tiny MSD is large => tiny diffs are not significant
        assert not protector.inspect(report, SITE_K, 10)

    def test_sensitive_component_recovers_on_single_large_error(self, operands):
        a, b, y = operands
        report = report_with_errors(a, b, y, {(2, 2): 1 << 24})
        assert self._protector().inspect(report, SITE_O, 10)

    def test_unknown_component_uses_conservative_default(self, operands):
        a, b, y = operands
        protector = StatisticalABFT({})
        report = report_with_errors(a, b, y, {(0, 0): 1 << 20})
        site_v = GemmSite(0, Component.V, Stage.PREFILL)
        assert protector.inspect(report, site_v, 10)

    def test_statistical_beats_classical_on_recovery_count(self, operands):
        """With sporadic large errors, ours recovers strictly less often
        than classical while both keep clean GEMMs untouched."""
        a, b, y = operands
        ours = self._protector(theta_freq=4.0)
        classical = ClassicalABFT()
        reports = [
            checksum_report(a, b, y),
            report_with_errors(a, b, y, {(0, 0): 1 << 25}),
            report_with_errors(a, b, y, {(3, 7): 1 << 23}),
        ]
        for r in reports:
            ours.inspect(r, SITE_K, 10)
            classical.inspect(r, SITE_K, 10)
        assert classical.stats.recovered == 2
        assert ours.stats.recovered == 0

    def test_reset_clears_stats(self, operands):
        a, b, y = operands
        protector = self._protector()
        protector.inspect(report_with_errors(a, b, y, {(0, 0): 1 << 25}), SITE_O, 10)
        protector.reset()
        assert protector.stats.inspected == 0
