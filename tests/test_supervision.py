"""Tests for the supervised pool (repro.campaigns.supervise).

The pool is generic — any picklable one-payload target — so most tests
drive it with trivial targets that kill, hang, or raise on their first
lease and succeed on the requeue. The campaign-level test at the bottom
SIGKILLs a real worker mid-pack via the chaos harness and asserts the
wave still completes with a store identical to an undisturbed run.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

import repro.telemetry as telemetry
from repro.campaigns import ErrorSpec, SiteSpec
from repro.campaigns.chaos import ChaosSpec
from repro.campaigns.executor import run_campaign
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.campaigns.supervise import (
    PackDone,
    PackLost,
    SupervisedPool,
    SuperviseConfig,
)

FAST = SuperviseConfig(
    trial_timeout=30.0,
    max_retries=1,
    max_requeues=3,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
    poll_interval_s=0.02,
)


# Module-level targets: picklable under both fork and spawn start methods.
def _double(payload):
    return payload["value"] * 2


def _kill_on_first_lease(payload):
    if payload.get("pack_attempt", 0) == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return "recovered"


def _hang_on_first_lease(payload):
    if payload.get("pack_attempt", 0) == 0:
        time.sleep(3600)
    return "recovered"


def _raise_on_first_lease(payload):
    if payload.get("pack_attempt", 0) == 0:
        raise RuntimeError("flaky worker")
    return "recovered"


def _always_kill(payload):
    os.kill(os.getpid(), signal.SIGKILL)


def _always_hang(payload):
    time.sleep(3600)


def _drain(pool, timeout_s=60.0):
    """Collect events until the pool has nothing outstanding."""
    events = []
    deadline = time.monotonic() + timeout_s
    while pool.outstanding:
        assert time.monotonic() < deadline, "supervised pool failed to drain"
        event = pool.next_event()
        if event is not None:
            events.append(event)
    return events


def _counter(name):
    return telemetry.METRICS.counter(name).value


class TestSuperviseConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SuperviseConfig(trial_timeout=0)
        with pytest.raises(ValueError):
            SuperviseConfig(max_retries=-1)
        with pytest.raises(ValueError):
            SuperviseConfig(backoff_base_s=1.0, backoff_cap_s=0.5)
        with pytest.raises(ValueError):
            SuperviseConfig(poll_interval_s=0)
        with pytest.raises(ValueError):
            SuperviseConfig(respawn_window_s=0)
        with pytest.raises(ValueError):
            SuperviseConfig(max_respawns_per_window=0)

    def test_backoff_is_deterministic_and_bounded(self):
        cfg = SuperviseConfig(backoff_base_s=0.1, backoff_cap_s=1.0)
        assert cfg.backoff(0, "k") == 0.0
        for attempt in (1, 2, 3, 8):
            a = cfg.backoff(attempt, "key")
            b = cfg.backoff(attempt, "key")
            assert a == b  # jitter is a pure hash: reruns schedule identically
            assert 0.0 < a <= 2 * cfg.backoff_cap_s
        assert cfg.backoff(1, "key-a") != cfg.backoff(1, "key-b")

    def test_dict_round_trip_only_non_defaults(self):
        assert SuperviseConfig().to_dict() == {}
        cfg = SuperviseConfig(trial_timeout=7.0, max_retries=5)
        assert cfg.to_dict() == {"trial_timeout": 7.0, "max_retries": 5}
        assert SuperviseConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown supervise keys"):
            SuperviseConfig.from_dict({"trial_timeout": 1.0, "retries": 3})


class TestSupervisedPool:
    def test_round_trip(self):
        pool = SupervisedPool(2, _double, config=FAST)
        try:
            ids = [pool.submit({"value": v}, deadline_s=30.0) for v in range(5)]
            events = _drain(pool)
        finally:
            pool.close()
        assert len(events) == 5
        by_id = {e.job_id: e for e in events}
        assert set(by_id) == set(ids)
        assert sorted(e.outcomes for e in events) == [0, 2, 4, 6, 8]

    def test_sigkill_mid_pack_requeues_exactly_once(self):
        deaths = _counter("supervise.worker_deaths")
        requeues = _counter("supervise.requeues")
        pool = SupervisedPool(2, _kill_on_first_lease, config=FAST)
        try:
            pool.submit({"job": "a"}, deadline_s=30.0)
            events = _drain(pool)
        finally:
            pool.close()
        assert [type(e) for e in events] == [PackDone]
        assert events[0].outcomes == "recovered"
        assert _counter("supervise.worker_deaths") == deaths + 1
        assert _counter("supervise.requeues") == requeues + 1

    def test_hang_past_lease_deadline_is_killed_and_requeued(self):
        expiries = _counter("supervise.lease_expiries")
        pool = SupervisedPool(1, _hang_on_first_lease, config=FAST)
        try:
            pool.submit({"job": "h"}, deadline_s=0.3)
            events = _drain(pool)
        finally:
            pool.close()
        assert [type(e) for e in events] == [PackDone]
        assert events[0].outcomes == "recovered"
        assert _counter("supervise.lease_expiries") == expiries + 1

    def test_worker_level_raise_is_requeued(self):
        # target() raising outside its own error handling is infrastructure
        # failure: the pool requeues it transparently, no event surfaces.
        pool = SupervisedPool(1, _raise_on_first_lease, config=FAST)
        try:
            pool.submit({"job": "r"}, deadline_s=30.0)
            events = _drain(pool)
        finally:
            pool.close()
        assert [type(e) for e in events] == [PackDone]
        assert events[0].outcomes == "recovered"

    def test_pack_lost_after_requeue_budget(self):
        cfg = SuperviseConfig(
            trial_timeout=30.0, max_requeues=1,
            backoff_base_s=0.01, backoff_cap_s=0.02, poll_interval_s=0.02,
        )
        pool = SupervisedPool(1, _always_kill, config=cfg)
        try:
            pool.submit({"job": "doomed"}, deadline_s=30.0)
            events = _drain(pool)
        finally:
            pool.close()
        assert [type(e) for e in events] == [PackLost]
        assert events[0].requeues == 1
        assert "died" in events[0].reason

    def test_force_close_never_hangs_on_wedged_worker(self):
        pool = SupervisedPool(1, _always_hang, config=FAST)
        pool.submit({"job": "w"}, deadline_s=3600.0)
        while not any(w.lease is not None for w in pool._workers):
            pool.next_event()
        start = time.monotonic()
        pool.close(force=True)
        assert time.monotonic() - start < 5.0
        pool.close()  # idempotent

    def test_requeued_payload_carries_pack_attempt(self):
        pool = SupervisedPool(1, _kill_on_first_lease, config=FAST)
        try:
            pool.submit({"job": "a"}, deadline_s=30.0)
            events = _drain(pool)
        finally:
            pool.close()
        assert events[0].payload["pack_attempt"] == 1

    def test_respawn_storm_is_throttled_then_recovers(self):
        """A worker that dies instantly must not fork-loop: past the
        per-window cap the pool runs short-handed (WARNING + counter), and
        respawns back to target strength once the window slides."""
        cfg = SuperviseConfig(
            trial_timeout=30.0, max_requeues=8,
            backoff_base_s=0.0, backoff_cap_s=0.0, poll_interval_s=0.02,
            respawn_window_s=60.0, max_respawns_per_window=2,
        )
        throttled = _counter("supervise.respawns_throttled")
        pool = SupervisedPool(1, _always_kill, config=cfg)
        try:
            pool.submit({"job": "storm"}, deadline_s=30.0)
            deadline = time.monotonic() + 30.0
            while _counter("supervise.respawns_throttled") == throttled:
                assert time.monotonic() < deadline, "throttle never engaged"
                pool.next_event()
            # Cap hit after exactly max_respawns_per_window respawns: the
            # initial worker plus two replacements died, nothing refills.
            assert pool._workers == []
            assert pool._respawn_debt >= 1
            # The window slides: the next reaper tick respawns to target.
            pool._respawn_times = [time.monotonic() - 120.0]
            pool._maybe_respawn()
            assert len(pool._workers) == 1
        finally:
            pool.close(force=True)

    def test_rejects_zero_workers_and_use_after_close(self):
        with pytest.raises(ValueError):
            SupervisedPool(0, _double)
        pool = SupervisedPool(1, _double, config=FAST)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.submit({}, deadline_s=1.0)
        with pytest.raises(RuntimeError):
            pool.next_event()


class TestSupervisedCampaign:
    def test_worker_sigkill_mid_pack_completes_wave(self, tmp_path, opt_bundle):
        """Chaos SIGKILLs the worker holding the only pack; the supervisor
        requeues it exactly once and the store matches an undisturbed run."""
        spec = CampaignSpec(
            name="t-sigkill",
            models=("opt-mini",),
            sites=(SiteSpec.only(components=["K"], stages=["prefill"]),),
            errors=(ErrorSpec.bitflip(1e-3, bits=(30,)),),
            seeds=(0, 1),
            supervise=SuperviseConfig(
                trial_timeout=60.0, backoff_base_s=0.01, poll_interval_s=0.02
            ),
        )
        requeues = _counter("supervise.requeues")
        with ResultStore(tmp_path / "clean") as clean_store:
            clean = run_campaign(spec, clean_store, workers=0)
            assert clean.failed == 0 and clean.executed == 2
            clean_records = {
                r.key: (r.trial.to_dict(), r.result.score, r.result.degradation)
                for r in clean_store.records()
            }
        with ResultStore(tmp_path / "chaos") as chaos_store:
            report = run_campaign(
                spec,
                chaos_store,
                workers=2,
                chaos=ChaosSpec(seed=0, kill_workers=1.0),
            )
            chaos_records = {
                r.key: (r.trial.to_dict(), r.result.score, r.result.degradation)
                for r in chaos_store.records()
            }
        assert report.failed == 0 and report.executed == 2
        assert chaos_records == clean_records
        # one pack, killed on its first lease, requeued exactly once
        assert _counter("supervise.requeues") == requeues + 1
