"""Fig. 7 — statistical ABFT on the systolic array, driven through the
unified GEMM dispatch pipeline (DESIGN.md section 8).

The dataflow table is now a thin consumer of the pipeline: the same GEMM is
(a) functionally simulated tile-by-tile by :class:`SystolicArray` (the
fault-injection oracle) and (b) dispatched through :class:`GemmExecutor`
with a :class:`CostInstrument` attached — and the two must agree cycle for
cycle, which pins the pipeline's cost accounting to the hardware model the
paper's Fig. 7 numbers come from. A third section measures what cost
accounting *costs*: a full opt-mini evaluation with and without the
instrument attached must stay within 10% wall clock (the tiling-plan memo
caches make per-call accounting a dictionary lookup).

Emits ``benchmarks/results/BENCH_dispatch.json`` (the perf-trajectory
datapoint CI uploads as an artifact). Smoke mode (``REPRO_BENCH_SMOKE=1``
or ``--smoke``) shrinks the eval workload and skips the overhead assertion
so CI can exercise the benchmark in seconds.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import RESULTS_DIR, bundle, table

from repro.abft.protectors import ClassicalABFT, StatisticalABFT
from repro.abft.region import CriticalRegion, theta_mag
from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.dispatch import CostInstrument
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, GemmSite, SiteFilter, Stage
from repro.models.quantized import GemmExecutor, QuantizedWeight
from repro.quant.gemm import gemm_int32
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import OS, WS
from repro.systolic.stat_unit import Log2LinearUnit
from repro.utils.seeding import derive_rng

SITE = GemmSite(0, Component.K, Stage.PREFILL)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE")) or "--smoke" in sys.argv[1:]
EVAL_SIZING = TaskSizing(lm_sequences=4 if SMOKE else 48, lm_seq_len=32)
EVAL_ROUNDS = 2 if SMOKE else 11
MAX_OVERHEAD = 0.10  # cost accounting must stay under 10% of eval wall clock


def _pipeline_cost(dataflow, x, weight, protect: bool):
    """Dispatch one GEMM through the executor with a cost instrument and
    return the measured report (the pipeline's half of the agreement)."""
    executor = GemmExecutor()
    cost = CostInstrument(size=32, dataflow=dataflow)
    executor.cost = cost
    executor.attach(None, ClassicalABFT() if protect else None)
    try:
        executor.linear(x, weight, SITE)
    finally:
        executor.attach(None, None)
        executor.cost = None
    return cost.report, executor


def test_fig7_systolic_dataflows(benchmark):
    rng = derive_rng(0, "fig7")
    a = rng.integers(-127, 128, size=(96, 96)).astype(np.int8)
    b = rng.integers(-127, 128, size=(96, 96)).astype(np.int8)
    reference = gemm_int32(a, b)

    ws_array = SystolicArray(32, WS)
    benchmark.pedantic(lambda: ws_array.gemm(a, b), rounds=3, iterations=1)

    # The pipeline route quantizes float operands; feed it the float image
    # of the weight codes so shapes (and therefore cycles) match exactly.
    weight = QuantizedWeight.from_float(b.astype(np.float64))
    x = a.astype(np.float64)

    rows = []
    for dataflow, name in ((WS, "WS"), (OS, "OS")):
        array = SystolicArray(32, dataflow)
        out, plain = array.gemm(a, b, site=SITE)
        np.testing.assert_array_equal(out, reference)

        # Pipeline-measured cycles must agree with the functional simulator
        # on both the plain and the checksum-augmented configuration.
        pipeline_plain, executor = _pipeline_cost(dataflow, x, weight, protect=False)
        assert pipeline_plain.compute_cycles == plain.compute_cycles
        assert pipeline_plain.tiles == plain.tiles
        assert pipeline_plain.macs == plain.macs
        _, with_checksum = array.gemm(a, b, protector=ClassicalABFT(), site=SITE)
        pipeline_checked, _ = _pipeline_cost(dataflow, x, weight, protect=True)
        assert pipeline_checked.compute_cycles == with_checksum.compute_cycles

        region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0)
        protector = StatisticalABFT({"K": region})
        injector = ErrorInjector(BitFlipModel(1e-5), seed=1)
        protected_out, protected = array.gemm(a, b, injector, protector, SITE)
        checksum_overhead = protected.compute_cycles / plain.compute_cycles - 1.0
        rows.append(
            [name, plain.compute_cycles, pipeline_plain.compute_cycles,
             protected.compute_cycles, f"{100*checksum_overhead:.2f}%",
             protected.recovered_tiles, f"{100*protected.recovery_overhead:.2f}%"]
        )
        # checksum pipeline overhead is ~1 cycle per tile: negligible
        assert checksum_overhead < 0.05
    table(
        "fig7_systolic",
        ["dataflow", "array cycles", "pipeline cycles", "protected cycles",
         "checksum overhead", "recovered tiles", "recovery cycle overhead"],
        rows,
        title="Fig 7: statistical ABFT on WS/OS systolic arrays "
              "(functional sim == dispatch-pipeline cost accounting)",
    )


def test_fig7_statistical_unit_hw_vs_sw(benchmark):
    """The Log2LinearFunction hardware threshold tracks the software law."""
    unit = Log2LinearUnit(a=1.5, b=12.0)
    msds = [2**p + 3 for p in range(4, 30, 2)]

    benchmark.pedantic(lambda: [unit.theta_mag(m) for m in msds], rounds=10, iterations=1)

    rows = []
    for msd in msds:
        hw = unit.theta_mag(msd)
        sw = theta_mag(1.5, 12.0, msd)
        ratio = hw / sw if sw else float("inf")
        rows.append([msd, sw, hw, f"{ratio:.3f}"])
        assert 0.4 <= ratio <= 2.5
    table(
        "fig7_stat_unit_hw_vs_sw",
        ["MSD", "software theta_mag", "hardware theta_mag", "ratio"],
        rows,
        title="Fig 7(c): Log2LinearFunction unit vs exact threshold",
    )


def _one_eval(evaluator, flt, cost) -> float:
    injector = ErrorInjector(BitFlipModel(1e-3, bits=(30,)), flt, seed=1)
    if cost is not None:
        cost.reset()
    start = time.perf_counter()
    evaluator.run(injector, cost=cost)
    return time.perf_counter() - start


def _time_eval(evaluator, flt, cost_instrument):
    """Best-of-N wall clock for both routes, rounds interleaved so drift
    (thermal, BLAS threads, noisy neighbours) hits them symmetrically."""
    plain_best = cost_best = float("inf")
    for _ in range(EVAL_ROUNDS):
        plain_best = min(plain_best, _one_eval(evaluator, flt, None))
        cost_best = min(cost_best, _one_eval(evaluator, flt, cost_instrument))
    return plain_best, cost_best


def _run_overhead():
    """Cost-instrument overhead on a whole-model opt-mini evaluation.

    Measured on the full-forward route (``replay=False``): replay-resumed
    evals finish in single-digit milliseconds, where timer noise would
    swamp the per-call accounting being measured. The full route runs the
    same dispatches per GEMM, so the relative overhead bound transfers.
    """
    evaluator = ModelEvaluator(
        bundle("opt-mini"), "perplexity", sizing=EVAL_SIZING, replay=False
    )
    flt = SiteFilter.everywhere()
    evaluator.clean_score  # prime baseline + replay traces outside the timing
    cost = CostInstrument(size=256, dataflow=WS)
    _one_eval(evaluator, flt, None)  # warm caches for both routes
    _one_eval(evaluator, flt, cost)
    plain_s, cost_s = _time_eval(evaluator, flt, cost)
    overhead = cost_s / plain_s - 1.0

    report = cost.report
    energy_uj = cost.energy(0.70).total_j * 1e6
    table(
        "fig7_dispatch_overhead",
        ["metric", "value"],
        [
            ["eval wall clock, cost off (s)", f"{plain_s:.4f}"],
            ["eval wall clock, cost on (s)", f"{cost_s:.4f}"],
            ["cost-accounting overhead", f"{100*overhead:.2f}%"],
            ["measured GEMM calls (sites)", len(report.by_site)],
            ["measured cycles", report.total_cycles],
            ["measured MACs", report.macs],
            ["energy @0.70V (uJ)", f"{energy_uj:.3f}"],
        ],
        title="Dispatch-pipeline cost accounting: overhead on an opt-mini eval",
    )
    payload = {
        "benchmark": "dispatch",
        "model": "opt-mini",
        "task": "perplexity",
        "smoke": SMOKE,
        "lm_sequences": EVAL_SIZING.lm_sequences,
        "plain_s": round(plain_s, 5),
        "cost_s": round(cost_s, 5),
        "overhead_pct": round(100 * overhead, 2),
        "sites_measured": len(report.by_site),
        "cycles": report.total_cycles,
        "macs": report.macs,
        "energy_uj_at_0v70": round(energy_uj, 4),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dispatch.json").write_text(json.dumps(payload, indent=2) + "\n")
    if not SMOKE:
        assert overhead < MAX_OVERHEAD, (
            f"cost accounting added {100*overhead:.1f}% to the eval "
            f"(budget {100*MAX_OVERHEAD:.0f}%)"
        )
    return overhead


def test_fig7_cost_instrument_overhead(benchmark):
    benchmark.pedantic(_run_overhead, rounds=1, iterations=1)


if __name__ == "__main__":
    overhead = _run_overhead()
    print(f"cost-accounting overhead: {100*overhead:.2f}%")
