"""Fig. 7 — statistical ABFT on the systolic array: functional correctness
under WS/OS dataflows, checksum latency overhead, and hardware-vs-software
agreement of the statistical unit (Log2LinearFunction).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import table

from repro.abft.protectors import StatisticalABFT
from repro.abft.region import CriticalRegion, theta_mag
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32
from repro.systolic.array import SystolicArray
from repro.systolic.dataflow import OS, WS, tile_latency_cycles
from repro.systolic.stat_unit import Log2LinearUnit
from repro.utils.seeding import derive_rng

SITE = GemmSite(0, Component.K, Stage.PREFILL)


def test_fig7_systolic_dataflows(benchmark):
    rng = derive_rng(0, "fig7")
    a = rng.integers(-127, 128, size=(96, 96)).astype(np.int8)
    b = rng.integers(-127, 128, size=(96, 96)).astype(np.int8)
    reference = gemm_int32(a, b)

    ws_array = SystolicArray(32, WS)
    benchmark.pedantic(lambda: ws_array.gemm(a, b), rounds=3, iterations=1)

    rows = []
    for dataflow, name in ((WS, "WS"), (OS, "OS")):
        array = SystolicArray(32, dataflow)
        out, plain = array.gemm(a, b)
        np.testing.assert_array_equal(out, reference)
        region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0)
        protector = StatisticalABFT({"K": region})
        injector = ErrorInjector(BitFlipModel(1e-5), seed=1)
        protected_out, protected = array.gemm(a, b, injector, protector, SITE)
        checksum_overhead = protected.compute_cycles / plain.compute_cycles - 1.0
        rows.append(
            [name, plain.compute_cycles, protected.compute_cycles,
             f"{100*checksum_overhead:.2f}%", protected.recovered_tiles,
             f"{100*protected.recovery_overhead:.2f}%"]
        )
        # checksum pipeline overhead is ~1 cycle per tile: negligible
        assert checksum_overhead < 0.05
    table(
        "fig7_systolic",
        ["dataflow", "plain cycles", "protected cycles", "checksum overhead",
         "recovered tiles", "recovery cycle overhead"],
        rows,
        title="Fig 7: statistical ABFT on WS/OS systolic arrays",
    )


def test_fig7_statistical_unit_hw_vs_sw(benchmark):
    """The Log2LinearFunction hardware threshold tracks the software law."""
    unit = Log2LinearUnit(a=1.5, b=12.0)
    msds = [2**p + 3 for p in range(4, 30, 2)]

    benchmark.pedantic(lambda: [unit.theta_mag(m) for m in msds], rounds=10, iterations=1)

    rows = []
    for msd in msds:
        hw = unit.theta_mag(msd)
        sw = theta_mag(1.5, 12.0, msd)
        ratio = hw / sw if sw else float("inf")
        rows.append([msd, sw, hw, f"{ratio:.3f}"])
        assert 0.4 <= ratio <= 2.5
    table(
        "fig7_stat_unit_hw_vs_sw",
        ["MSD", "software theta_mag", "hardware theta_mag", "ratio"],
        rows,
        title="Fig 7(c): Log2LinearFunction unit vs exact threshold",
    )
