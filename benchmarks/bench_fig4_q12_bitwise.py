"""Fig. 4(c)(d) / Q1.2 — bit-wise resilience.

Paper finding: low-bit errors are negligible everywhere; high-bit errors on
a re-quantized component (K) saturate, while on an FP-residual component (O)
they are unbounded and destructive.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import evaluator, table

from repro.characterization.questions import q12_bitwise
from repro.errors.sites import Component

BITS = (10, 14, 22, 30)
BERS = (1e-4, 1e-3)


def test_q12_bitwise_resilience(benchmark):
    ev = evaluator("opt-mini", "perplexity")

    benchmark.pedantic(
        lambda: q12_bitwise(ev, bits=(30,), components=(Component.K,), bers=(1e-3,)),
        rounds=1,
        iterations=1,
    )

    records = q12_bitwise(ev, bits=BITS, components=(Component.K, Component.O), bers=BERS)
    rows = [[r.label, f"{r.ber:.0e}", r.score, r.degradation] for r in records]
    table(
        "fig4cd_q12_bitwise",
        ["component/bit", "BER", "perplexity", "degradation"],
        rows,
        title="Fig 4(c)(d): bit-wise resilience — K saturates, O does not",
    )
    worst = {r.label: r.degradation for r in records if r.ber == 1e-3}
    # low bits harmless on both components
    assert worst["K/bit10"] < 0.3 and worst["O/bit10"] < 0.3
    # K's high-bit errors saturate at re-quantization; O's do not
    assert worst["K/bit30"] < 0.3
    assert worst["O/bit30"] > 10 * max(worst["K/bit30"], 0.01)
