"""Ablations of the design choices called out in DESIGN.md section 6.

Not a paper figure: these benches justify modeling decisions by measuring
what changes when each is flipped.

1. Static (calibrated) vs dynamic activation quantization — the saturation
   mechanism behind the resilient/sensitive split.
2. Wraparound vs saturating INT32 accumulators.
3. Per-column error buffers (countif) vs a scalar MSD detector at equal
   error statistics — why the statistical unit stores n buffers.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import bundle, table

from repro.abft.checksums import checksum_report
from repro.abft.protectors import ApproxABFT, StatisticalABFT
from repro.abft.region import CriticalRegion
from repro.errors.injector import ErrorInjector
from repro.errors.models import BitFlipModel, MagFreqModel
from repro.errors.sites import Component, GemmSite, SiteFilter, Stage
from repro.evalsuite.harness import evaluate_perplexity
from repro.data.tasks import build_lm_data
from repro.models.export import quantize_model
from repro.quant.gemm import gemm_int32
from repro.utils.seeding import derive_rng

SITE = GemmSite(0, Component.K, Stage.PREFILL)


def test_ablation_static_vs_dynamic_quantization(benchmark):
    """Dynamic per-tensor scales let one large error wash out the whole
    tensor; calibrated static scales clip it — resilient components exist
    only in the static setting."""
    b = bundle("opt-mini")
    lm = build_lm_data(b.source, 3, 24)
    calibration = [row for row in b.source.sample_batch(2, 32, key="calibration")]

    results = {}

    def run():
        for mode, calib in (("static", calibration), ("dynamic", None)):
            model = quantize_model(b.state, b.config, calibration=calib)
            clean = evaluate_perplexity(model, lm)
            injector = ErrorInjector(
                BitFlipModel(2e-3), SiteFilter.only(components=[Component.K]), seed=4
            )
            model.attach(injector, None)
            faulty = evaluate_perplexity(model, lm)
            model.attach(None, None)
            results[mode] = faulty - clean

    benchmark.pedantic(run, rounds=1, iterations=1)
    table(
        "ablation_quantization_mode",
        ["activation quantization", "K-injection ppl degradation @ BER 2e-3"],
        [[k, v] for k, v in results.items()],
        title="Ablation 1: static saturation is what makes K resilient",
    )
    assert results["static"] < 0.3
    assert results["dynamic"] > results["static"]


def test_ablation_wraparound_vs_saturation(benchmark):
    """Accumulator semantics: wraparound matches checksum algebra exactly;
    saturation breaks the checksum identity on overflow."""
    k = 2**18
    a = np.full((2, k), 127, dtype=np.int64)
    b = np.full((k, 2), 127, dtype=np.int64)

    def run():
        return gemm_int32(a, b), gemm_int32(a, b, wraparound=False)

    wrapped, saturated = benchmark(run)
    report_wrapped = checksum_report(a, b, wrapped)
    report_saturated = checksum_report(a, b, saturated)
    table(
        "ablation_accumulator",
        ["accumulator", "checksum MSD on fault-free GEMM"],
        [["wraparound", report_wrapped.msd], ["saturating", report_saturated.msd]],
        title="Ablation 2: only wraparound keeps fault-free checksums exact",
    )
    assert report_wrapped.msd == 0
    assert report_saturated.msd > 0  # saturation aliases as a phantom error


def test_ablation_buffers_vs_scalar_msd(benchmark):
    """Equal-MSD patterns: one large error vs many medium errors. The
    scalar-MSD detector (ApproxABFT) cannot tell them apart; the per-column
    buffers + countif can — motivating the statistical unit's n buffers."""
    rng = derive_rng(0, "ablation3")
    a = rng.integers(-50, 50, size=(32, 32)).astype(np.int8)
    b = rng.integers(-50, 50, size=(32, 32)).astype(np.int8)
    y = gemm_int32(a, b)
    msd_budget = 2**24

    def make_report(freq):
        mag = msd_budget // freq
        injector = ErrorInjector(MagFreqModel(mag=mag, freq=freq), seed=7)
        bad = injector.corrupt(y, SITE)
        return checksum_report(a, b, bad)

    sporadic = make_report(freq=2)
    frequent = make_report(freq=32)
    benchmark.pedantic(lambda: make_report(4), rounds=5, iterations=1)

    region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0)
    ours = StatisticalABFT({"K": region})
    approx = ApproxABFT(msd_threshold=2**20)

    rows = []
    decisions = {}
    for name, report in (("2 large errors", sporadic), ("32 medium errors", frequent)):
        ours_rec = ours.should_recover(report, SITE)
        approx_rec = approx.should_recover(report, SITE)
        decisions[name] = (ours_rec, approx_rec)
        rows.append([name, report.msd, "recover" if approx_rec else "accept",
                     "recover" if ours_rec else "accept"])
    table(
        "ablation_buffers_vs_msd",
        ["error pattern (iso-MSD)", "MSD", "scalar-MSD decision", "countif decision"],
        rows,
        title="Ablation 3: per-column buffers separate iso-MSD patterns",
    )
    # approx treats both identically; ours distinguishes them
    assert decisions["2 large errors"][1] == decisions["32 medium errors"][1]
    assert decisions["2 large errors"][0] != decisions["32 medium errors"][0]
