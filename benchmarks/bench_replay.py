"""Clean-trace replay engine — per-trial speedup on the Q1.1 layer sweep.

Engineering benchmark (no paper figure): times the Q1.1 layer-wise
characterization of the 8-layer ``opt-deep`` model twice — ``replay=False``
(the seed-equivalent full-forward route) vs ``replay=True`` (clean-trace
replay, DESIGN.md section 7) — and reports the per-layer-cell speedup. A
trial targeting layer ``k`` resumes its forwards from the layer-``k``
boundary, so deep-layer cells skip most of the model: the deepest cell must
gain **>= 3x**. Scores are asserted bit-identical between the two routes,
so the table is a pure wall-clock comparison of the same measurement.

Emits ``benchmarks/results/BENCH_replay.json`` with trials/sec per cell
(the perf-trajectory datapoint CI uploads as an artifact).

Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the workload to
``opt-mini`` and skips the speedup assertion so CI can exercise the
benchmark in seconds. The **>= 3x assertion is enforced only in full
(non-smoke) runs**: a smoke cell times sub-millisecond forwards on a
2-layer model, where a layer-0 trial resumes from the very first boundary
and replay's bookkeeping overhead can legitimately record sub-1x
"speedups" (see the committed ``BENCH_replay.json``) — that is measurement
noise on a workload replay is not built for, not a regression.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, bundle, table

from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.characterization.questions import q11_layerwise

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE")) or "--smoke" in sys.argv[1:]

MODEL = "opt-mini" if SMOKE else "opt-deep"
BERS = (1e-3,) if SMOKE else (1e-5, 1e-4, 1e-3, 1e-2)
SIZING = TaskSizing(lm_sequences=4 if SMOKE else 12, lm_seq_len=32)
ROUNDS = 1 if SMOKE else 3
MIN_DEEP_SPEEDUP = 3.0


def _evaluators():
    b = bundle(MODEL)
    full = ModelEvaluator(b, "perplexity", sizing=SIZING, replay=False)
    replay = ModelEvaluator(b, "perplexity", sizing=SIZING, replay=True)
    return b, full, replay


def _time_layer(evaluator, layer: int) -> float:
    """Best-of-ROUNDS wall clock for one layer cell across the BER sweep."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        q11_layerwise(evaluator, layers=[layer], bers=BERS)
        best = min(best, time.perf_counter() - start)
    return best


def _run():
    b, ev_full, ev_replay = _evaluators()
    layers = list(range(b.config.n_layers))

    # Bit-identical scores on every cell is the precondition for comparing
    # wall clocks — assert it before timing anything.
    assert ev_full.clean_score == ev_replay.clean_score
    for records_full, records_replay in zip(
        q11_layerwise(ev_full, layers=layers, bers=BERS),
        q11_layerwise(ev_replay, layers=layers, bers=BERS),
    ):
        assert records_full.score == records_replay.score, (
            f"replay route diverged on {records_full.label}: "
            f"{records_full.score} != {records_replay.score}"
        )

    n_trials = len(BERS)
    cells = []
    for layer in layers:
        full_s = _time_layer(ev_full, layer)
        replay_s = _time_layer(ev_replay, layer)
        cells.append(
            {
                "layer": layer,
                "trials": n_trials,
                "full_s": round(full_s, 4),
                "replay_s": round(replay_s, 4),
                "speedup": round(full_s / replay_s, 2),
                "trials_per_s_full": round(n_trials / full_s, 2),
                "trials_per_s_replay": round(n_trials / replay_s, 2),
            }
        )

    rows = [
        [
            f"layer{c['layer']}",
            c["trials"],
            f"{c['full_s']:.3f}",
            f"{c['replay_s']:.3f}",
            f"{c['speedup']:.2f}x",
            f"{c['trials_per_s_replay']:.1f}",
        ]
        for c in cells
    ]
    table(
        "bench_replay",
        ["cell", "trials", "full (s)", "replay (s)", "speedup", "trials/s (replay)"],
        rows,
        title=(
            f"Q1.1 layer cells of {MODEL} ({SIZING.lm_sequences} sequences x "
            f"{len(BERS)} BERs, bit-identical scores across routes)"
            + (
                "; smoke mode: sub-ms cells, >=3x asserted only in full runs"
                if SMOKE
                else ""
            )
        ),
    )

    deep = cells[-1]
    payload = {
        "benchmark": "replay",
        "model": MODEL,
        "task": "perplexity",
        "smoke": SMOKE,
        "bers": list(BERS),
        "lm_sequences": SIZING.lm_sequences,
        "cells": cells,
        "deep_layer_speedup": deep["speedup"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replay.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        assert deep["speedup"] >= MIN_DEEP_SPEEDUP, (
            f"deep-layer replay speedup {deep['speedup']:.2f}x below "
            f"target {MIN_DEEP_SPEEDUP}x"
        )
    return deep["speedup"]


def test_replay_speedup(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


if __name__ == "__main__":
    speedup = _run()
    print(f"deep-layer speedup: {speedup:.2f}x")
