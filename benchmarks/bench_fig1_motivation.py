"""Fig. 1 — motivation: (a) lower voltage -> higher BER -> perplexity blows
up without protection; (b) statistical ABFT cuts recovery cost vs classical.

Paper reference: OPT-1.3B on WikiText-2; BER synthesized from a 14nm SA.
Here: OPT-style tiny LM on the synthetic LM task, BER(V) from the
calibrated log-linear model.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import BER_SWEEP, FAST_VOLTAGES, emit, pipeline, table

from repro.characterization.sweeps import ber_sweep
from repro.circuits.voltage import VoltageBerModel
from repro.utils.tables import format_table


def test_fig1a_ber_vs_perplexity(benchmark):
    pipe = pipeline("opt-mini")
    voltage_model = VoltageBerModel()

    def run_one():
        return ber_sweep(pipe.evaluator, [1e-4], label="probe")[0].score

    benchmark.pedantic(run_one, rounds=3, iterations=1)

    records = ber_sweep(pipe.evaluator, BER_SWEEP, label="no-protection")
    rows = []
    for record in records:
        voltage = voltage_model.voltage_for_ber(record.ber)
        rows.append([f"{record.ber:.0e}", f"{voltage:.3f}", record.score, record.degradation])
    table(
        "fig1a_ber_vs_perplexity",
        ["BER", "approx voltage (V)", "perplexity", "degradation"],
        rows,
        title="Fig 1(a): perplexity vs BER, no protection (all components)",
    )
    assert records[-1].degradation > 1.0  # high BER is unacceptable
    assert records[0].degradation < 0.3  # low BER is harmless


def test_fig1b_recovery_cost_saved(benchmark):
    pipe = pipeline("opt-mini")

    def run_one():
        return pipe.evaluate_method_at("statistical-abft", None, 0.68)

    benchmark.pedantic(run_one, rounds=1, iterations=1)

    rows = []
    savings = []
    for voltage in FAST_VOLTAGES:
        classical = pipe.evaluate_method_at("classical-abft", None, voltage)
        ours = pipe.evaluate_method_at("statistical-abft", None, voltage)
        saved = classical.recovered_macs - ours.recovered_macs
        pct = 100.0 * saved / classical.recovered_macs if classical.recovered_macs else 0.0
        savings.append(pct)
        rows.append(
            [f"{voltage:.2f}", classical.recovered_macs, ours.recovered_macs, f"{pct:.1f}%"]
        )
    table(
        "fig1b_recovery_cost_saved",
        ["voltage", "classical recovered MACs", "ours recovered MACs", "recovery saved"],
        rows,
        title="Fig 1(b): recovery cost saved by statistical ABFT",
    )
    assert max(savings) > 50.0  # substantial recovery reduction somewhere
