"""Fig. 8 — circuit area and power of 256x256 WS/OS arrays under the four
protection schemes. Paper: statistical ABFT costs 1.42-1.43% area and
1.79-1.82% power."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import table

from repro.circuits.synthesis import overhead_report


def test_fig8_area_power_overhead(benchmark):
    rows_raw = benchmark(lambda: overhead_report(256))
    rows = [
        [r.dataflow, r.scheme, r.area_mm2, f"{r.area_overhead_pct:.3f}%",
         r.power_mw, f"{r.power_overhead_pct:.3f}%"]
        for r in rows_raw
    ]
    table(
        "fig8_overhead",
        ["dataflow", "scheme", "area (mm^2)", "area overhead",
         "power (mW)", "power overhead"],
        rows,
        title="Fig 8: area/power overhead at 256x256 (paper: 1.42% / 1.79%)",
    )
    stat = [r for r in rows_raw if r.scheme == "statistical-abft"]
    for r in stat:
        assert 1.0 < r.area_overhead_pct < 2.0
        assert 1.2 < r.power_overhead_pct < 2.5
        assert r.power_overhead_pct > r.area_overhead_pct
