"""Trial-lane vectorization — trials/sec vs the per-trial replay route.

Engineering benchmark (no paper figure): scores Q1.3-style campaign cells
of ``opt-mini`` (component O, prefill, fixed BER, K seeds) two ways — the
per-trial route (one replay-resumed forward per trial, the PR-3/PR-4
execution model) vs the lane-packed route (all K trials as K batch lanes
of one replayed forward, DESIGN.md section 9) — and reports trials/sec.
Results are asserted **bit-identical** between the routes before anything
is timed, so the table is a pure wall-clock comparison of the same
measurement.

Two cells are reported:

- the *headline* cell (2 sequences x 16 tokens, 64 seeds): the
  overhead-dominated Monte-Carlo regime lane packing exists for — many
  seeds per cell, small per-trial forwards, per-trial scaffolding and
  dispatch overhead dominating wall clock. Full (non-smoke) runs assert
  **>= 2x** here (target >= 3x).
- the *default-sizing* cell (the characterization sweeps' TaskSizing,
  16 seeds), reported unasserted for context: its per-lane arithmetic
  after fault divergence bounds the gain — lanes genuinely diverge after
  injection, so only per-dispatch overhead amortizes, not element work.

Emits ``benchmarks/results/BENCH_lanes.json`` (the perf-trajectory
datapoint CI uploads as an artifact and ``tools/bench_compare.py`` guards
against regressions).

Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the cells and
skips the speedup assertion so CI can exercise the benchmark in seconds;
like ``bench_replay.py``, the >= 2x bound is enforced only in full runs
(millisecond-scale smoke cells are dominated by timing noise).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, bundle, table

import numpy as np

import repro.telemetry as telemetry
from repro.campaigns.executor import evaluate_trial
from repro.dispatch.backends import PREPACK, get_backend
from repro.dispatch.pipeline import GemmCall
from repro.campaigns.lanes import evaluate_lane_pack
from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
from repro.characterization.evaluator import ModelEvaluator, TaskSizing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE")) or "--smoke" in sys.argv[1:]

MODEL = "opt-mini"
ROUNDS = 1 if SMOKE else 3
MIN_SPEEDUP = 2.0
TARGET_SPEEDUP = 3.0
#: Floor for the ``blocked`` GEMM backend over ``numpy-f64`` on the
#: harvested campaign workload — asserted in full runs only, and only when
#: a genuinely parallel kernel is active (``blocked.fast``): the tiled-f32
#: single-core fallback is a correctness path, not a speed claim.
MIN_BACKEND_SPEEDUP = 2.0
#: Floor for the compiled ``native`` kernel over ``numpy-f64`` — asserted
#: in full runs only, and only when ``native.fast`` (compiled kernel on a
#: multi-core host, where the row-parallel partition applies); elsewhere
#: the measured ratio is reported unasserted.
MIN_NATIVE_SPEEDUP = 3.0
#: The overhead contract (DESIGN.md section 10): full spans + dispatch
#: tracing may cost at most this much wall time on the lane-packed path.
MAX_TELEMETRY_OVERHEAD_PCT = 2.0

#: (label, TaskSizing, lane count, asserted): the headline Monte-Carlo cell
#: plus the characterization default sizing for context.
CELLS = (
    (
        "mc-cell",
        TaskSizing(lm_sequences=2, lm_seq_len=16),
        4 if SMOKE else 64,
        True,
    ),
    (
        "default-sizing",
        TaskSizing(),
        4 if SMOKE else 16,
        False,
    ),
)


def _cell_trials(lanes: int) -> list[Trial]:
    """One Q1.3-style cell: component O, prefill, fixed BER, ``lanes`` seeds."""
    return [
        Trial(
            model=MODEL,
            task="perplexity",
            site=SiteSpec.only(components=["O"], stages=["prefill"]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)),
            seed=seed,
        )
        for seed in range(lanes)
    ]


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_per_op(fn, n: int, repeats: int = 5) -> float:
    """Best-of wall time per call of ``fn`` over ``n``-iteration loops."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / n


def _telemetry_overhead_pct(evaluator, trials, packed_baseline, plain_pack_s) -> float:
    """Measure the enabled-telemetry overhead on the lane-packed path.

    Diffing whole-pack wall clocks cannot resolve this number here: the
    enabled mode adds a handful of microseconds to a ~40 ms pack, while
    single-CPU host noise (frequency drift, scheduler preemption) moves
    pack timings by several percent no matter how samples are paired or
    aggregated — a wall-clock estimate of a <0.1% effect under +/-3% noise
    gates nothing. Instead the benchmark measures exactly what enabled
    telemetry adds to the path: it runs one traced pack to *count* the
    events (dispatch timing boundaries, spans, the per-run trace
    attach/detach), microtimes each primitive in a tight loop (stable to a
    few percent even on a noisy host, since each sample aggregates
    thousands of ops), and reports their per-pack cost as a fraction of
    the measured plain pack time. A tracer regression — a span growing a
    syscall, an observe() going quadratic — shows up directly in the
    per-op timings. Bit-exactness with telemetry enabled is asserted
    before anything is timed.
    """
    telemetry.enable()
    try:
        trace = telemetry.gemm_trace()
        trace.reset()
        telemetry.tracer().drain()
        traced = evaluate_lane_pack(trials, evaluator)
        spans = len(telemetry.tracer().drain())
        for t, base, tr in zip(trials, packed_baseline, traced):
            for field in ("score", "degradation", "injected_errors", "gemm_calls"):
                assert getattr(tr, field) == getattr(base, field), (
                    f"telemetry perturbed seed {t.seed} ({field}): "
                    f"{getattr(tr, field)} != {getattr(base, field)}"
                )
        boundaries = sum(
            row.calls + row.replays for row in trace.by_site.values()
        )
        site = next(iter(trace.by_site))
        call = GemmCall(site=site, macs=1 << 20, out_shape=(16, 16))

        # The enabled-mode additions, timed individually: the two
        # perf_counter() stamps plus observe() per dispatch/replay
        # boundary, one span per recorded event, and the per-run trace
        # attach/detach on the executor.
        t_clock = _time_per_op(time.perf_counter, 50_000)
        t_observe = _time_per_op(lambda: trace.observe(call, 1e-6), 20_000)

        def span_once():
            with telemetry.span("eval.run", task="perplexity", lanes=len(trials)):
                pass

        t_span = _time_per_op(span_once, 5_000)
        executor = evaluator.model.executor

        def attach_detach():
            saved = executor.trace
            executor.trace = trace
            executor.trace = saved

        t_attach = _time_per_op(attach_detach, 2_000)
        trace.reset()
        telemetry.tracer().drain()
    finally:
        telemetry.disable()

    per_pack_s = (
        boundaries * (2 * t_clock + t_observe) + spans * t_span + t_attach
    )
    return 100.0 * per_pack_s / plain_pack_s


class _RecordingBackend:
    """Transparent proxy over a backend, harvesting the GEMM workload of one
    pack: the (route, shapes, mirror) of every kernel call that actually
    executes — replay-skipped calls never reach the backend, so the harvest
    is exactly the campaign's live GEMM mix."""

    def __init__(self, inner):
        self._inner = inner
        self.calls: list[tuple] = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def matmul_f64(self, a_q, b_q, b_f64=None):
        self.calls.append(("f64", a_q.shape, b_q.shape, b_f64 is not None))
        return self._inner.matmul_f64(a_q, b_q, b_f64=b_f64)

    def matmul_int32(self, a_q, b_q, wraparound=True, b_f64=None):
        self.calls.append(("int32", a_q.shape, b_q.shape, b_f64 is not None))
        return self._inner.matmul_int32(
            a_q, b_q, wraparound=wraparound, b_f64=b_f64
        )


def _harvest_gemm_workload(sizing: TaskSizing, lanes: int) -> list[tuple]:
    evaluator = ModelEvaluator(bundle(MODEL), "perplexity", sizing=sizing, replay=True)
    trials = _cell_trials(lanes)
    evaluator.clean_score
    executor = evaluator.model.executor
    proxy = _RecordingBackend(executor.backend)
    executor.backend = proxy
    try:
        evaluate_lane_pack(trials, evaluator)
    finally:
        executor.backend = proxy._inner
    return proxy.calls


def _workload_once(backend, ops) -> None:
    for kind, a, b, mirror in ops:
        if kind == "f64":
            backend.matmul_f64(a, b, b_f64=mirror)
        else:
            backend.matmul_int32(a, b, b_f64=mirror)


def _measure_backend_speedup(sizing: TaskSizing, lanes: int) -> dict:
    """Accelerated backends (blocked, native) vs numpy-f64 on synthesized
    operands matching the harvested shapes, timed as interleaved best-of
    rounds (single-CPU noise robust).  The headline ``backend_speedup`` is
    the best measured candidate; per-backend breakdowns ride along, and
    the shared prepack cache's hit rate over the timed phase is reported
    (weight panels pack once, then every rerun hits)."""
    calls = _harvest_gemm_workload(sizing, lanes)
    rng = np.random.default_rng(0)
    ops = []
    for kind, a_shape, b_shape, has_mirror in calls:
        a = rng.integers(-127, 128, size=a_shape, dtype=np.int8)
        b = rng.integers(-127, 128, size=b_shape, dtype=np.int8)
        ops.append((kind, a, b, b.astype(np.float64) if has_mirror else None))
    reference = get_backend("numpy-f64")
    candidates = [
        b for b in (get_backend("blocked"), get_backend("native"))
        if b.available()
    ]
    start = time.perf_counter()  # warm (compiles, pool spin-up) + size
    _workload_once(reference, ops)
    for backend in candidates:
        _workload_once(backend, ops)
    pass_s = (time.perf_counter() - start) / (1 + len(candidates))
    # Smoke workloads pass in well under a millisecond — loop each sample
    # up to ~20 ms so scheduler noise cannot swamp the ratio.
    inner = max(1, int(0.02 / max(pass_s, 1e-6)))
    PREPACK.reset_stats()  # warm-up packed every weight: steady-state rate
    times = {b.name: float("inf") for b in candidates}
    t_ref = float("inf")
    for _ in range(3 if SMOKE else 7):
        start = time.perf_counter()
        for _ in range(inner):
            _workload_once(reference, ops)
        t_ref = min(t_ref, (time.perf_counter() - start) / inner)
        for backend in candidates:
            start = time.perf_counter()
            for _ in range(inner):
                _workload_once(backend, ops)
            times[backend.name] = min(
                times[backend.name], (time.perf_counter() - start) / inner
            )
    prepack = PREPACK.stats()
    breakdown = {
        b.name: {
            "speedup": round(t_ref / times[b.name], 2),
            "kernel": b.kernel(),
            "fast": b.fast,
            "time_s": round(times[b.name], 4),
        }
        for b in candidates
    }
    best = max(candidates, key=lambda b: breakdown[b.name]["speedup"])
    return {
        "backend_speedup": breakdown[best.name]["speedup"],
        "backend_name": best.name,
        "backend_kernel": best.kernel(),
        "backend_fast": best.fast,
        "backend_gemm_calls": len(ops),
        "backend_ref_s": round(t_ref, 4),
        "backends": breakdown,
        "prepack_hit_rate": prepack["hit_rate"],
        "prepack_stats": prepack,
    }


def _measure_cell(label: str, sizing: TaskSizing, lanes: int) -> dict:
    evaluator = ModelEvaluator(bundle(MODEL), "perplexity", sizing=sizing, replay=True)
    trials = _cell_trials(lanes)

    # Bit-identical results on every lane is the precondition for comparing
    # wall clocks — assert it (and warm every cache) before timing anything.
    evaluator.clean_score
    solo = [evaluate_trial(t, evaluator) for t in trials]
    packed = evaluate_lane_pack(trials, evaluator)
    for t, s, p in zip(trials, solo, packed):
        for field in ("score", "degradation", "injected_errors", "gemm_calls"):
            assert getattr(s, field) == getattr(p, field), (
                f"lane route diverged on seed {t.seed} ({field}): "
                f"{getattr(s, field)} != {getattr(p, field)}"
            )

    per_trial_s = _best_of(lambda: [evaluate_trial(t, evaluator) for t in trials])
    lanes_s = _best_of(lambda: evaluate_lane_pack(trials, evaluator))
    overhead_pct = _telemetry_overhead_pct(evaluator, trials, packed, lanes_s)
    return {
        "cell": label,
        "lanes": lanes,
        "lm_sequences": sizing.lm_sequences,
        "lm_seq_len": sizing.lm_seq_len,
        "per_trial_s": round(per_trial_s, 4),
        "lanes_s": round(lanes_s, 4),
        "trials_per_s_per_trial": round(lanes / per_trial_s, 2),
        "trials_per_s_lanes": round(lanes / lanes_s, 2),
        "speedup": round(per_trial_s / lanes_s, 2),
        "telemetry_overhead_pct": round(overhead_pct, 4),
    }


def _run():
    cells = [
        _measure_cell(label, sizing, lanes)
        for label, sizing, lanes, _asserted in CELLS
    ]

    rows = []
    for cell in cells:
        rows.append(
            [
                f"{cell['cell']} ({cell['lm_sequences']}x{cell['lm_seq_len']})",
                cell["lanes"],
                f"{cell['per_trial_s']:.4f}",
                f"{cell['lanes_s']:.4f}",
                f"{cell['trials_per_s_lanes']:.1f}",
                f"{cell['speedup']:.2f}x",
                f"{cell['telemetry_overhead_pct']:+.3f}%",
            ]
        )
    table(
        "bench_trial_lanes",
        ["cell", "lanes", "per-trial (s)", "packed (s)", "trials/s (lanes)",
         "speedup", "telemetry ovh"],
        rows,
        title=(
            f"Q1.3 cells of {MODEL} (component O, prefill, bit-identical "
            "results across routes)"
            + ("; smoke mode: >=2x asserted only in full runs" if SMOKE else "")
        ),
    )

    headline = cells[0]
    backend = _measure_backend_speedup(CELLS[0][1], CELLS[0][2])
    for name, entry in backend["backends"].items():
        print(
            f"{name} backend ({entry['kernel']}): "
            f"{entry['speedup']:.2f}x vs numpy-f64 over "
            f"{backend['backend_gemm_calls']} harvested GEMMs"
            + ("" if entry["fast"] else " [fallback/single-core: unasserted]")
        )
    print(
        f"prepack cache: {backend['prepack_hit_rate']:.3f} hit rate "
        f"({backend['prepack_stats']['hits']} hits / "
        f"{backend['prepack_stats']['misses']} misses)"
    )
    payload = {
        "benchmark": "trial_lanes",
        "model": MODEL,
        "task": "perplexity",
        "smoke": SMOKE,
        "lanes": headline["lanes"],
        "cells": cells,
        "speedup": headline["speedup"],
        "telemetry_overhead_pct": headline["telemetry_overhead_pct"],
        **backend,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_lanes.json").write_text(json.dumps(payload, indent=2) + "\n")

    # The telemetry overhead contract is absolute and the per-op
    # measurement is noise-robust, so smoke runs gate it at full strength.
    assert headline["telemetry_overhead_pct"] < MAX_TELEMETRY_OVERHEAD_PCT, (
        f"telemetry overhead {headline['telemetry_overhead_pct']:.2f}% on "
        f"{headline['cell']} exceeds the {MAX_TELEMETRY_OVERHEAD_PCT}% cap"
    )
    if not SMOKE:
        for cell, (_, _, _, asserted) in zip(cells, CELLS):
            if asserted:
                assert cell["speedup"] >= MIN_SPEEDUP, (
                    f"lane-packed speedup {cell['speedup']:.2f}x on {cell['cell']} "
                    f"below the {MIN_SPEEDUP}x floor (target {TARGET_SPEEDUP}x)"
                )
        # Backend speed claims are only made where the fast kernel
        # actually runs (parallel / compiled on a multi-core host); the
        # single-core fallbacks are reported, never asserted.
        blocked_entry = backend["backends"].get("blocked")
        if blocked_entry is not None and blocked_entry["fast"]:
            assert blocked_entry["speedup"] >= MIN_BACKEND_SPEEDUP, (
                f"blocked backend speedup {blocked_entry['speedup']:.2f}x "
                f"({blocked_entry['kernel']}) below the "
                f"{MIN_BACKEND_SPEEDUP}x floor"
            )
        native_entry = backend["backends"].get("native")
        if native_entry is not None and native_entry["fast"]:
            assert native_entry["speedup"] >= MIN_NATIVE_SPEEDUP, (
                f"native backend speedup {native_entry['speedup']:.2f}x "
                f"({native_entry['kernel']}) below the "
                f"{MIN_NATIVE_SPEEDUP}x floor"
            )
    return headline["speedup"]


def test_trial_lane_speedup(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


if __name__ == "__main__":
    speedup = _run()
    print(f"lane-packed speedup: {speedup:.2f}x")
