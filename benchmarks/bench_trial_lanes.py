"""Trial-lane vectorization — trials/sec vs the per-trial replay route.

Engineering benchmark (no paper figure): scores Q1.3-style campaign cells
of ``opt-mini`` (component O, prefill, fixed BER, K seeds) two ways — the
per-trial route (one replay-resumed forward per trial, the PR-3/PR-4
execution model) vs the lane-packed route (all K trials as K batch lanes
of one replayed forward, DESIGN.md section 9) — and reports trials/sec.
Results are asserted **bit-identical** between the routes before anything
is timed, so the table is a pure wall-clock comparison of the same
measurement.

Two cells are reported:

- the *headline* cell (2 sequences x 16 tokens, 64 seeds): the
  overhead-dominated Monte-Carlo regime lane packing exists for — many
  seeds per cell, small per-trial forwards, per-trial scaffolding and
  dispatch overhead dominating wall clock. Full (non-smoke) runs assert
  **>= 2x** here (target >= 3x).
- the *default-sizing* cell (the characterization sweeps' TaskSizing,
  16 seeds), reported unasserted for context: its per-lane arithmetic
  after fault divergence bounds the gain — lanes genuinely diverge after
  injection, so only per-dispatch overhead amortizes, not element work.

Emits ``benchmarks/results/BENCH_lanes.json`` (the perf-trajectory
datapoint CI uploads as an artifact and ``tools/bench_compare.py`` guards
against regressions).

Smoke mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the cells and
skips the speedup assertion so CI can exercise the benchmark in seconds;
like ``bench_replay.py``, the >= 2x bound is enforced only in full runs
(millisecond-scale smoke cells are dominated by timing noise).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import RESULTS_DIR, bundle, table

from repro.campaigns.executor import evaluate_trial
from repro.campaigns.lanes import evaluate_lane_pack
from repro.campaigns.spec import ErrorSpec, SiteSpec, Trial
from repro.characterization.evaluator import ModelEvaluator, TaskSizing

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE")) or "--smoke" in sys.argv[1:]

MODEL = "opt-mini"
ROUNDS = 1 if SMOKE else 3
MIN_SPEEDUP = 2.0
TARGET_SPEEDUP = 3.0

#: (label, TaskSizing, lane count, asserted): the headline Monte-Carlo cell
#: plus the characterization default sizing for context.
CELLS = (
    (
        "mc-cell",
        TaskSizing(lm_sequences=2, lm_seq_len=16),
        4 if SMOKE else 64,
        True,
    ),
    (
        "default-sizing",
        TaskSizing(),
        4 if SMOKE else 16,
        False,
    ),
)


def _cell_trials(lanes: int) -> list[Trial]:
    """One Q1.3-style cell: component O, prefill, fixed BER, ``lanes`` seeds."""
    return [
        Trial(
            model=MODEL,
            task="perplexity",
            site=SiteSpec.only(components=["O"], stages=["prefill"]),
            error=ErrorSpec.bitflip(1e-3, bits=(30,)),
            seed=seed,
        )
        for seed in range(lanes)
    ]


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure_cell(label: str, sizing: TaskSizing, lanes: int) -> dict:
    evaluator = ModelEvaluator(bundle(MODEL), "perplexity", sizing=sizing, replay=True)
    trials = _cell_trials(lanes)

    # Bit-identical results on every lane is the precondition for comparing
    # wall clocks — assert it (and warm every cache) before timing anything.
    evaluator.clean_score
    solo = [evaluate_trial(t, evaluator) for t in trials]
    packed = evaluate_lane_pack(trials, evaluator)
    for t, s, p in zip(trials, solo, packed):
        for field in ("score", "degradation", "injected_errors", "gemm_calls"):
            assert getattr(s, field) == getattr(p, field), (
                f"lane route diverged on seed {t.seed} ({field}): "
                f"{getattr(s, field)} != {getattr(p, field)}"
            )

    per_trial_s = _best_of(lambda: [evaluate_trial(t, evaluator) for t in trials])
    lanes_s = _best_of(lambda: evaluate_lane_pack(trials, evaluator))
    return {
        "cell": label,
        "lanes": lanes,
        "lm_sequences": sizing.lm_sequences,
        "lm_seq_len": sizing.lm_seq_len,
        "per_trial_s": round(per_trial_s, 4),
        "lanes_s": round(lanes_s, 4),
        "trials_per_s_per_trial": round(lanes / per_trial_s, 2),
        "trials_per_s_lanes": round(lanes / lanes_s, 2),
        "speedup": round(per_trial_s / lanes_s, 2),
    }


def _run():
    cells = [
        _measure_cell(label, sizing, lanes)
        for label, sizing, lanes, _asserted in CELLS
    ]

    rows = []
    for cell in cells:
        rows.append(
            [
                f"{cell['cell']} ({cell['lm_sequences']}x{cell['lm_seq_len']})",
                cell["lanes"],
                f"{cell['per_trial_s']:.4f}",
                f"{cell['lanes_s']:.4f}",
                f"{cell['trials_per_s_lanes']:.1f}",
                f"{cell['speedup']:.2f}x",
            ]
        )
    table(
        "bench_trial_lanes",
        ["cell", "lanes", "per-trial (s)", "packed (s)", "trials/s (lanes)", "speedup"],
        rows,
        title=(
            f"Q1.3 cells of {MODEL} (component O, prefill, bit-identical "
            "results across routes)"
            + ("; smoke mode: >=2x asserted only in full runs" if SMOKE else "")
        ),
    )

    headline = cells[0]
    payload = {
        "benchmark": "trial_lanes",
        "model": MODEL,
        "task": "perplexity",
        "smoke": SMOKE,
        "lanes": headline["lanes"],
        "cells": cells,
        "speedup": headline["speedup"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_lanes.json").write_text(json.dumps(payload, indent=2) + "\n")

    if not SMOKE:
        for cell, (_, _, _, asserted) in zip(cells, CELLS):
            if asserted:
                assert cell["speedup"] >= MIN_SPEEDUP, (
                    f"lane-packed speedup {cell['speedup']:.2f}x on {cell['cell']} "
                    f"below the {MIN_SPEEDUP}x floor (target {TARGET_SPEEDUP}x)"
                )
    return headline["speedup"]


def test_trial_lane_speedup(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)


if __name__ == "__main__":
    speedup = _run()
    print(f"lane-packed speedup: {speedup:.2f}x")
