"""Table II — per-component optimal voltages and energy savings for both
model families. Paper shape: resilient components save 15-36%, sensitive
components (O, FC2, Down) save almost nothing."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import pipeline, table

from repro.errors.sites import component_kind


def _run(model_name: str, experiment_id: str, title: str):
    pipe = pipeline(model_name, "perplexity")
    components = pipe.bundle.config.components
    rows_raw = pipe.sweet_spot_table(list(components))
    rows = [
        [r.component, r.kind, f"{r.optimal_voltage:.2f}", r.energy_j * 1e9,
         r.baseline_method, f"{r.baseline_voltage:.2f}",
         r.baseline_energy_j * 1e9, f"{r.saving_pct:.2f}%"]
        for r in rows_raw
    ]
    table(
        experiment_id,
        ["component", "kind", "our V*", "our E (nJ)", "baseline",
         "baseline V*", "baseline E (nJ)", "saving"],
        rows,
        title=title,
    )
    by_kind: dict[str, list[float]] = {"resilient": [], "sensitive": []}
    for r in rows_raw:
        by_kind[r.kind].append(r.saving_pct)
    # Table II shape: resilient >> sensitive savings
    assert max(by_kind["resilient"]) > 15.0
    assert np.mean(by_kind["resilient"]) > np.mean(by_kind["sensitive"]) + 5.0
    # sensitive components sit at higher (safer) voltages
    sens_v = [r.optimal_voltage for r in rows_raw if r.kind == "sensitive"]
    res_v = [r.optimal_voltage for r in rows_raw if r.kind == "resilient"]
    assert min(sens_v) >= max(res_v) - 1e-9


def test_table2_opt(benchmark):
    benchmark.pedantic(
        lambda: _run("opt-mini", "table2_opt",
                     "Table II (left): OPT-style, energy saving per component"),
        rounds=1, iterations=1,
    )


def test_table2_llama(benchmark):
    benchmark.pedantic(
        lambda: _run("llama-mini", "table2_llama",
                     "Table II (right): LLaMA-style, energy saving per component"),
        rounds=1, iterations=1,
    )
