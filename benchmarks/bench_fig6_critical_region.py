"""Fig. 6 — fitted critical regions for a resilient and a sensitive
component, with the fitted (a, b, theta_freq) parameters and the grid
classification they induce.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import FAST_FREQS, FAST_MAGS, emit, pipeline

from repro.errors.sites import Component
from repro.utils.tables import format_table


def test_fig6_critical_regions(benchmark):
    pipe = pipeline("opt-mini")

    benchmark.pedantic(
        lambda: pipe.calibrate([Component.K, Component.O]), rounds=1, iterations=1
    )

    sections = []
    for component in (Component.K, Component.O):
        region = pipe.regions[component.value]
        points = pipe.grids[component.value]
        rows = []
        for p in points:
            inside = region.predicts_recovery(p.mag, p.freq)
            rows.append(
                [int(p.mag), int(p.freq), p.degradation,
                 "critical" if p.degradation > pipe.config.budget else "ok",
                 "recover" if inside else "accept"]
            )
        header = (
            f"component {component.value} ({region.kind}): "
            f"a={region.a:.2f} b={region.b:.1f} theta_freq={region.theta_freq:.0f}"
        )
        sections.append(
            header + "\n" + format_table(
                ["mag", "freq", "degradation", "ground truth", "decision"], rows
            )
        )
        # reliability: the rule flags every critical grid point
        missed = [
            p for p in points
            if p.degradation > pipe.config.budget
            and not region.predicts_recovery(p.mag, p.freq)
        ]
        assert not missed, f"missed critical points on {component.value}"
    emit("fig6_critical_region", "\n\n".join(sections))

    # the sensitive region is strictly larger (flags more patterns)
    k_flags = sum(
        pipe.regions["K"].predicts_recovery(m, f) for m in FAST_MAGS for f in FAST_FREQS
    )
    o_flags = sum(
        pipe.regions["O"].predicts_recovery(m, f) for m in FAST_MAGS for f in FAST_FREQS
    )
    assert o_flags > k_flags
