"""Fig. 4(a)(b) / Q1.1 — layer-wise resilience.

Paper protocol: flip bit 30, inject into every component of a single
Transformer block, sweep BER, for several layer indices. Uses the 4-layer
tiny zoo models so layer position matters.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import evaluator, table

from repro.characterization.questions import q11_layerwise

BERS = (1e-5, 1e-4, 1e-3, 1e-2)


def test_q11_layerwise_resilience(benchmark):
    ev = evaluator("opt-tiny", "perplexity")
    layers = list(range(ev.bundle.config.n_layers))

    benchmark.pedantic(
        lambda: q11_layerwise(ev, layers=[0], bers=(1e-3,)), rounds=1, iterations=1
    )

    records = q11_layerwise(ev, layers=layers, bers=BERS)
    rows = []
    by_layer: dict[str, list[float]] = {}
    for record in records:
        by_layer.setdefault(record.label, []).append(record.degradation)
        rows.append([record.label, f"{record.ber:.0e}", record.score, record.degradation])
    table(
        "fig4a_q11_layerwise",
        ["layer", "BER", "perplexity", "degradation"],
        rows,
        title="Fig 4(a): layer-wise resilience (bit 30, one block at a time)",
    )
    # paper finding: earlier layers are at least as vulnerable as later ones
    first = max(by_layer[f"layer{layers[0]}"])
    last = max(by_layer[f"layer{layers[-1]}"])
    assert first >= 0.3 * last
    # every layer eventually degrades at the highest BER
    assert all(max(v) > 0.0 for v in by_layer.values())
