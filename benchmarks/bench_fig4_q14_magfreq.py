"""Fig. 4(g)(h) / Q1.4 — error magnitude vs frequency trade-off at iso-MSD.

Paper Insight 2: resilient components tolerate both sporadic large and
frequent small errors (non-monotonic in frequency at fixed MSD); sensitive
components fail even with few large errors.

Each (mag, freq) cell is one campaign trial through the ``repro.campaigns``
engine, so the grid shares the executor/dedup path of the campaign CLI.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import table

from repro.campaigns import CampaignSpec, ErrorSpec, ResultStore, SiteSpec
from repro.campaigns.executor import run_campaign
from repro.errors.sites import Component

MAGS = tuple(2**p for p in (6, 10, 14, 18, 22, 26))
FREQS = (1, 4, 16, 64, 256)


def _grid(component: Component, experiment_id: str, title: str):
    spec = CampaignSpec(
        name=f"bench-q14-{component.value}",
        models=("opt-mini",),
        sites=(SiteSpec.only(components=[component]),),
        errors=tuple(ErrorSpec.magfreq(m, f) for m in MAGS for f in FREQS),
        seeds=(0,),
    )
    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(tmp) as store:
            report = run_campaign(spec, store, workers=0)
            assert report.failed == 0, report.errors
            records = store.records()
    rows = [
        [r.trial.error.mag, r.trial.error.freq, r.trial.error.mag * r.trial.error.freq,
         r.result.score, r.result.degradation]
        for r in records
    ]
    table(experiment_id, ["mag", "freq", "MSD", "perplexity", "degradation"], rows, title=title)
    return {(r.trial.error.mag, r.trial.error.freq): r.result.degradation for r in records}


def test_q14_resilient_component_grid(benchmark):
    grid = {}

    def run():
        grid.update(_grid(Component.K, "fig4g_q14_resilient",
                          "Fig 4(g): mag-freq grid on resilient component K"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    # sporadic large errors harmless on K
    assert grid[(2**26, 1)] < 0.3
    # frequent tiny errors harmless on K
    assert grid[(2**6, 256)] < 0.3


def test_q14_sensitive_component_grid(benchmark):
    grid = {}

    def run():
        grid.update(_grid(Component.O, "fig4h_q14_sensitive",
                          "Fig 4(h): mag-freq grid on sensitive component O"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    # few large errors already destroy a sensitive component...
    assert grid[(2**26, 4)] > 0.3
    # ...while frequent tiny errors stay harmless
    assert grid[(2**6, 256)] < 0.3
