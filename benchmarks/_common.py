"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper (the
experiment id in each file names it). Output goes to stdout *and* to
``benchmarks/results/<id>.txt`` so the artifacts survive pytest's output
capture; pytest-benchmark wraps one representative kernel per file.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.characterization.evaluator import ModelEvaluator
from repro.core.realm import ReaLMConfig, ReaLMPipeline
from repro.training.zoo import PretrainedBundle, get_pretrained
from repro.utils.tables import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Fast-but-meaningful configuration shared by the model-level benchmarks.
FAST_VOLTAGES = (0.84, 0.80, 0.76, 0.72, 0.68, 0.64, 0.60)
FAST_MAGS = tuple(2**p for p in (4, 10, 16, 22, 28))
FAST_FREQS = (1, 8, 64, 256)
BER_SWEEP = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2)


def emit(experiment_id: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/results/."""
    print(f"\n===== {experiment_id} =====")
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def table(experiment_id: str, headers, rows, title=None) -> None:
    emit(experiment_id, format_table(headers, rows, title=title))


@functools.lru_cache(maxsize=None)
def bundle(name: str) -> PretrainedBundle:
    return get_pretrained(name)


@functools.lru_cache(maxsize=None)
def evaluator(model_name: str, task: str) -> ModelEvaluator:
    return ModelEvaluator(bundle(model_name), task)


@functools.lru_cache(maxsize=None)
def pipeline(model_name: str, task: str = "perplexity") -> ReaLMPipeline:
    # Perplexity budget follows the paper (0.3). Accuracy-style tasks use a
    # one-example budget: with 10-16 evaluation examples the metric moves in
    # 6-10 point steps, so the paper's 0.5% is below the measurement
    # granularity.
    config = ReaLMConfig(
        task=task,
        budget=0.3 if task == "perplexity" else 10.0,
        voltages=FAST_VOLTAGES,
        calib_mags=FAST_MAGS,
        calib_freqs=FAST_FREQS,
    )
    return ReaLMPipeline(bundle(model_name), config)
