"""Fig. 5 — the normalization-skew mechanism behind Insight 1.

A single large error injected into the pre-norm hidden state drastically
shifts mu and sigma (outlier-dominated statistics), altering *every*
element after normalization; the same error after a bounded path stays
local.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import bundle, table

from repro.models.export import quantize_model
from repro.models.quantized import layer_norm_np


def test_fig5_normalization_skew(benchmark):
    b = bundle("opt-mini")
    model = quantize_model(b.state, b.config)
    tokens = b.source.sample_batch(1, 24, key="fig5")[0]

    # capture the true pre-norm hidden state of layer 1 (residual stream)
    h = model._embed_tokens(tokens, position=0)
    from repro.errors.sites import Stage

    h = model._block(model.layers[0], 0, h, Stage.PREFILL, None, 0)

    weight = model.layers[1]["norm1_w"]
    bias = model.layers[1]["norm1_b"]
    eps = b.config.norm_eps

    def normalize(x):
        return layer_norm_np(x, weight, bias, eps)

    benchmark.pedantic(lambda: normalize(h), rounds=20, iterations=1)

    clean_norm = normalize(h)
    corrupted = h.copy()
    error = 127.0 * 8.0  # a high-bit error surviving dequantization
    corrupted[5, 17] += error
    corrupted_norm = normalize(corrupted)

    row_clean = h[5]
    row_bad = corrupted[5]
    rows = [
        ["pre-norm mu", float(row_clean.mean()), float(row_bad.mean())],
        ["pre-norm sigma", float(row_clean.std()), float(row_bad.std())],
        ["post-norm max |delta| (other elements)",
         0.0,
         float(np.max(np.abs(np.delete(clean_norm[5] - corrupted_norm[5], 17))))],
        ["post-norm mean |delta| (other elements)",
         0.0,
         float(np.mean(np.abs(np.delete(clean_norm[5] - corrupted_norm[5], 17))))],
    ]
    table(
        "fig5_norm_skew",
        ["statistic", "clean", "with one injected error"],
        rows,
        title="Fig 5: one pre-norm error skews mu/sigma and every output",
    )
    # sigma inflates substantially and untouched elements shift globally
    assert row_bad.std() > 2.0 * row_clean.std()
    untouched_delta = np.abs(np.delete(clean_norm[5] - corrupted_norm[5], 17))
    assert untouched_delta.max() > 0.25
