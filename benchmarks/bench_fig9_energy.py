"""Fig. 9 — LLM performance and total energy vs operating voltage for the
six methods, on both model families.

A thin consumer of the dispatch pipeline (DESIGN.md section 8): every
(method, voltage) cell's MAC counts, recovery work, and systolic cycles
come from the :class:`~repro.dispatch.cost.CostInstrument` that
``ReaLMPipeline.evaluate_method_at`` attaches to the run's actual GEMM
dispatches — and this benchmark asserts that each reported energy
reproduces exactly from those *measured* counts (not from analytically
reconstructed shapes).

Deviation from the paper (see EXPERIMENTS.md): the paper injects into a
single component (K of OPT-1.3B, V of LLaMA-3-8B); in our tiny substitute,
single resilient components saturate harmlessly, so the headline comparison
protects the *whole model* — the actual deployment scenario — and the
per-component sweep lives in the Table II benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import FAST_VOLTAGES, pipeline, table

from repro.core.methods import METHODS, method_names
from repro.energy.model import EnergyModel, EnergyParams
from repro.energy.sweetspot import find_sweet_spot


def _assert_energy_is_measured(pipe, method: str, runs) -> None:
    """Every cell's energy must reproduce from its measured MAC counts."""
    spec = METHODS[method]
    model = EnergyModel(
        EnergyParams(
            e_mac_pj=pipe.config.e_mac_pj,
            detection_overhead=spec.detection_overhead,
            compute_factor=spec.compute_factor,
        )
    )
    for r in runs:
        assert r.cycles > 0, f"{method}@{r.voltage}: no measured cycles"
        assert r.energy_j == model.total_j(r.macs, r.recovered_macs, r.voltage), (
            f"{method}@{r.voltage}: energy does not reproduce from measured MACs"
        )


def _run(model_name: str, task: str, experiment_id: str, title: str):
    pipe = pipeline(model_name, task)
    comparison = pipe.method_comparison(None, methods=method_names())
    rows = []
    for method, runs in comparison.items():
        _assert_energy_is_measured(pipe, method, runs)
        for r in runs:
            rows.append(
                [method, f"{r.voltage:.2f}", f"{r.ber:.1e}", r.metric,
                 r.degradation, f"{r.recovery_rate:.3f}", r.cycles,
                 r.energy_j * 1e6, "yes" if r.feasible else "NO"]
            )
    table(
        experiment_id,
        ["method", "V", "BER", "metric", "degradation", "recovery rate",
         "cycles", "energy (uJ)", "feasible"],
        rows,
        title=title,
    )

    points = {
        m: [r.as_voltage_point() for r in runs] for m, runs in comparison.items()
    }
    # headline claim 1: no protection becomes infeasible at low voltage
    assert not points["no-protection"][-1].feasible
    # headline claim 2: ours stays feasible at least as deep into the
    # voltage sweep as running unprotected, and at every voltage where the
    # unprotected model is fine
    ours_min_feasible = min(p.voltage for p in points["statistical-abft"] if p.feasible)
    none_min_feasible = min(p.voltage for p in points["no-protection"] if p.feasible)
    assert ours_min_feasible <= none_min_feasible
    # headline claim 3: ours' sweet spot beats every prior-art method
    best_ours = find_sweet_spot(points["statistical-abft"])
    for method in ("classical-abft", "approx-abft", "dmr"):
        best_other = find_sweet_spot(points[method])
        assert best_ours.energy_j < best_other.energy_j, method
    savings = {
        m: 100.0 * (1.0 - best_ours.energy_j / find_sweet_spot(points[m]).energy_j)
        for m in ("classical-abft", "approx-abft", "dmr")
    }
    summary = [[m, f"{find_sweet_spot(points[m]).voltage:.2f}",
                find_sweet_spot(points[m]).energy_j * 1e6, f"{s:.1f}%"]
               for m, s in savings.items()]
    summary.append(["statistical-abft (ours)", f"{best_ours.voltage:.2f}",
                    best_ours.energy_j * 1e6, "-"])
    table(
        experiment_id + "_sweetspots",
        ["method", "sweet spot V", "energy (uJ)", "ours saves"],
        summary,
        title=title + " — sweet spots (energies from measured MAC counts)",
    )


def test_fig9a_opt_perplexity(benchmark):
    benchmark.pedantic(
        lambda: _run("opt-mini", "perplexity", "fig9a_opt_energy",
                     "Fig 9(a): OPT-style LM, perplexity task"),
        rounds=1, iterations=1,
    )


def test_fig9b_llama_multiple_choice(benchmark):
    benchmark.pedantic(
        lambda: _run("llama-mini", "hellaswag", "fig9b_llama_energy",
                     "Fig 9(b): LLaMA-style LM, HellaSwag-like task"),
        rounds=1, iterations=1,
    )
