"""Fig. 10 — trade-off between the acceptable-degradation budget and its
impact on recovery cost / total energy (the design's flexibility knob)."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from _common import pipeline, table

from repro.errors.sites import Component

BUDGETS = (0.05, 0.1, 0.3, 1.0, 3.0, 10.0)
LATENCY_VOLTAGE = 0.68


def test_fig10_budget_tradeoff(benchmark):
    pipe = pipeline("opt-mini")

    rows_raw = []

    def run():
        rows_raw.extend(
            pipe.tradeoff_curve(Component.FC2, budgets=BUDGETS,
                                latency_voltage=LATENCY_VOLTAGE)
        )

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [r["budget"], f"{100*r['recovery_overhead_at_v']:.1f}%",
         f"{r['optimal_voltage']:.2f}", r["total_energy_j"] * 1e9]
        for r in rows_raw
    ]
    table(
        "fig10_tradeoff",
        ["acceptable degradation", f"recovery overhead @ {LATENCY_VOLTAGE}V",
         "optimal voltage", "total energy (nJ)"],
        rows,
        title="Fig 10: degradation budget vs recovery cost and energy (FC2)",
    )
    overheads = [r["recovery_overhead_at_v"] for r in rows_raw]
    energies = [r["total_energy_j"] for r in rows_raw]
    # looser budgets monotonically reduce recovery work...
    assert all(x >= y - 1e-9 for x, y in zip(overheads, overheads[1:]))
    # ...and the loosest budget is at least as cheap as the tightest
    assert energies[-1] <= energies[0] + 1e-12
