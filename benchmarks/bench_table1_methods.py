"""Table I — qualitative comparison of fault-mitigation techniques,
reproduced from the method profiles that also drive the energy model."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import table

from repro.abft.baselines import METHOD_PROFILES, table1_rows


def test_table1_method_comparison(benchmark):
    rows = benchmark(table1_rows)
    table(
        "table1_methods",
        ["Method", "Level", "Detection", "HW eff.", "Recovery eff.",
         "Recovery cap.", "Scalability", "Accel. compat."],
        rows,
        title="Table I: fault mitigation techniques",
    )
    assert len(rows) == 5
    ours = METHOD_PROFILES["statistical-abft"]
    assert ours.recovery_efficiency == "high"
    assert not ours.recovers_per_error
    assert METHOD_PROFILES["redundancy"].compute_energy_factor == 2.0
    assert METHOD_PROFILES["fine-tuning"].recovery_efficiency == "prohibited"
