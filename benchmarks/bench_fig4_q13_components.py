"""Fig. 4(e)(f) / Q1.3 — per-component resilience in the prefill stage.

Paper Insight 1: components followed by normalization (O and FC2 in the
OPT block, O and Down in the LLaMA block) are far more sensitive than the
rest. Both architectures are swept.

Runs as a declarative campaign through the ``repro.campaigns`` engine (one
site per component x one bit-flip error per BER), exercising the same
executor path as ``python -m repro campaign run``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import bundle, table

from repro.campaigns import CampaignSpec, ErrorSpec, ResultStore, SiteSpec
from repro.campaigns.executor import run_campaign
from repro.characterization.questions import PROTOCOL_BIT
from repro.errors.sites import component_kind

BERS = (1e-4, 1e-3, 1e-2)


def _run(model_name: str, experiment_id: str, title: str):
    components = bundle(model_name).config.components
    spec = CampaignSpec(
        name=f"bench-q13-{model_name}",
        models=(model_name,),
        sites=tuple(
            SiteSpec.only(components=[c], stages=["prefill"]) for c in components
        ),
        errors=tuple(ErrorSpec.bitflip(b, bits=(PROTOCOL_BIT,)) for b in BERS),
        seeds=(0,),
    )
    with tempfile.TemporaryDirectory() as tmp:
        with ResultStore(tmp) as store:
            report = run_campaign(spec, store, workers=0)
            assert report.failed == 0, report.errors
            records = store.records()
    rows = []
    worst: dict[str, float] = {}
    for record in records:
        label = record.trial.site.components[0]
        degradation = record.result.degradation
        worst[label] = max(worst.get(label, 0.0), degradation)
        rows.append(
            [label, f"{record.trial.error.ber:.0e}", record.result.score, degradation]
        )
    table(experiment_id, ["component", "BER", "perplexity", "degradation"], rows, title=title)
    kinds = {c.value: component_kind(c) for c in components}
    sensitive_worst = {k: v for k, v in worst.items() if kinds[k] == "sensitive"}
    resilient_worst = {k: v for k, v in worst.items() if kinds[k] == "resilient"}
    # every sensitive component degrades far beyond every resilient one
    assert min(sensitive_worst.values()) > 5 * max(max(resilient_worst.values()), 1e-3)
    return records


def test_q13_components_opt(benchmark):
    benchmark.pedantic(
        lambda: _run("opt-mini", "fig4e_q13_components_opt",
                     "Fig 4(e): component resilience, OPT-style block"),
        rounds=1, iterations=1,
    )


def test_q13_components_llama(benchmark):
    benchmark.pedantic(
        lambda: _run("llama-mini", "fig4f_q13_components_llama",
                     "Fig 4(f): component resilience, LLaMA-style block"),
        rounds=1, iterations=1,
    )
