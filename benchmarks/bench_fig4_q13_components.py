"""Fig. 4(e)(f) / Q1.3 — per-component resilience in the prefill stage.

Paper Insight 1: components followed by normalization (O and FC2 in the
OPT block, O and Down in the LLaMA block) are far more sensitive than the
rest. Both architectures are swept.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import evaluator, table

from repro.characterization.questions import q13_components
from repro.errors.sites import SENSITIVE_COMPONENTS, component_kind

BERS = (1e-4, 1e-3, 1e-2)


def _run(model_name: str, experiment_id: str, title: str):
    ev = evaluator(model_name, "perplexity")
    records = q13_components(ev, bers=BERS)
    rows = []
    worst: dict[str, float] = {}
    for record in records:
        worst[record.label] = max(worst.get(record.label, 0.0), record.degradation)
        rows.append([record.label, f"{record.ber:.0e}", record.score, record.degradation])
    table(experiment_id, ["component", "BER", "perplexity", "degradation"], rows, title=title)
    kinds = {c.value: component_kind(c) for c in ev.bundle.config.components}
    sensitive_worst = {k: v for k, v in worst.items() if kinds[k] == "sensitive"}
    resilient_worst = {k: v for k, v in worst.items() if kinds[k] == "resilient"}
    # every sensitive component degrades far beyond every resilient one
    assert min(sensitive_worst.values()) > 5 * max(max(resilient_worst.values()), 1e-3)
    return records


def test_q13_components_opt(benchmark):
    benchmark.pedantic(
        lambda: _run("opt-mini", "fig4e_q13_components_opt",
                     "Fig 4(e): component resilience, OPT-style block"),
        rounds=1, iterations=1,
    )


def test_q13_components_llama(benchmark):
    benchmark.pedantic(
        lambda: _run("llama-mini", "fig4f_q13_components_llama",
                     "Fig 4(f): component resilience, LLaMA-style block"),
        rounds=1, iterations=1,
    )
