"""Fig. 4(i)(j) / Q2.1 — prefill vs decode stage sensitivity.

Paper Insight 3: the prefill stage is more sensitive than the decode stage,
because prefill errors poison the KV cache that drives every later token.
The workload mirrors the paper's shape — a long prompt (the X-Sum document)
and a short generation.

Reproduction note (EXPERIMENTS.md): the cache-poisoning mechanism dominates
in the high-BER regime. At low BER our tiny-model setup can invert the
ordering on the brittle reference-based metrics, because one decode error
directly edits the scored output token — an artifact of scoring against the
clean model's own generation rather than an independent gold reference.
Assertions therefore target the high-BER regime plus the unconditional
"two_stage is worst" ordering.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import bundle, table

from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.characterization.questions import q21_stages

BERS = (1e-3, 3e-3, 1e-2)
SIZING = TaskSizing(
    xsum_prompts=6, xsum_prompt_len=36, xsum_gen_len=4,
    gsm8k_prompts=8, gsm8k_prompt_len=36, gsm8k_gen_len=3,
)


def _run(task: str, experiment_id: str, title: str):
    ev = ModelEvaluator(bundle("llama-mini"), task, sizing=SIZING)
    records = q21_stages(ev, bers=BERS)
    rows = [[r.label, f"{r.ber:.0e}", r.score, r.degradation] for r in records]
    table(experiment_id, ["stage", "BER", "score", "degradation"], rows, title=title)
    by_stage: dict[str, dict[float, float]] = {}
    for r in records:
        by_stage.setdefault(r.label, {})[r.ber] = r.degradation
    return by_stage


def test_q21_stage_sensitivity_xsum(benchmark):
    result = {}

    def run():
        result.update(_run("xsum", "fig4i_q21_stages_xsum",
                           "Fig 4(i): prefill vs decode, summarization (ROUGE-1)"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    top = max(BERS)
    # cache-poisoning regime: prefill at least as damaging as decode
    assert result["prefill_stage"][top] >= result["decode_stage"][top] - 1e-9
    # injecting both stages is the worst case at every BER
    for ber in BERS:
        assert result["two_stage"][ber] >= result["prefill_stage"][ber] - 1e-9


def test_q21_stage_sensitivity_gsm8k(benchmark):
    result = {}

    def run():
        result.update(_run("gsm8k", "fig4j_q21_stages_gsm8k",
                           "Fig 4(j): prefill vs decode, arithmetic (exact match)"))

    benchmark.pedantic(run, rounds=1, iterations=1)
    prefill_mean = sum(result["prefill_stage"].values()) / len(BERS)
    decode_mean = sum(result["decode_stage"].values()) / len(BERS)
    assert prefill_mean >= decode_mean - 1e-9
    two_mean = sum(result["two_stage"].values()) / len(BERS)
    assert two_mean >= max(prefill_mean, decode_mean) - 1e-9
