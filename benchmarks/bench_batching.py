"""Batched inference engine — wall-clock speedup on the Q1.3 characterization.

Engineering benchmark (no paper figure): times the Q1.3 per-component
resilience sweep of ``opt-mini`` under three engine configurations and
reports the end-to-end speedup the batched engine delivers:

- ``seed-equivalent``: per-sequence evaluation loop with the all-integer
  GEMM route (the ``numpy-int`` backend) — a *conservative* stand-in for
  the pre-batching engine, which additionally looped per attention head;
- ``single-sequence``: per-sequence evaluation on the fast engine
  (head-batched GEMMs + BLAS int8 pipeline);
- ``batched``: the default batched path (whole task per forward,
  lock-step generation).

All three produce bit-identical fault-free scores (asserted), so the table
is a pure wall-clock comparison of the same measurement.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the workload and skips the
speedup assertion so CI can exercise the benchmark in seconds.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import bundle, table

from repro.characterization.evaluator import ModelEvaluator, TaskSizing
from repro.characterization.questions import DEFAULT_BERS, q13_components
from repro.dispatch.backends import get_backend

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

#: Larger-than-default eval set: the batched engine's advantage grows with
#: the number of sequences scored per trial, and 12 is still tiny.
SIZING = TaskSizing(lm_sequences=4 if SMOKE else 12, lm_seq_len=32)
BERS = (1e-3,) if SMOKE else DEFAULT_BERS
ROUNDS = 1 if SMOKE else 3
MIN_SPEEDUP = 3.0


def _evaluators():
    # replay=False throughout: this benchmark isolates the batching axis,
    # so no configuration may ride the clean-trace replay engine (that
    # speedup is bench_replay.py's measurement).
    b = bundle("opt-mini")
    seed_like = ModelEvaluator(
        b, "perplexity", sizing=SIZING, batched=False, reuse_model=False, replay=False
    )
    seed_like.model.executor.backend = get_backend("numpy-int")
    single = ModelEvaluator(b, "perplexity", sizing=SIZING, batched=False, replay=False)
    batched = ModelEvaluator(b, "perplexity", sizing=SIZING, batched=True, replay=False)
    return {"seed-equivalent": seed_like, "single-sequence": single, "batched": batched}


def _time_q13(evaluator) -> tuple[float, int]:
    """Best-of-ROUNDS wall clock for the full Q1.3 sweep on one evaluator."""
    components = None  # all components of the architecture
    q13_components(evaluator, components=components, bers=BERS[:1])  # warmup
    best = float("inf")
    trials = 0
    for _ in range(ROUNDS):
        start = time.perf_counter()
        records = q13_components(evaluator, components=components, bers=BERS)
        best = min(best, time.perf_counter() - start)
        trials = len(records)
    return best, trials


def _run():
    evaluators = _evaluators()
    clean_scores = {name: ev.clean_score for name, ev in evaluators.items()}
    assert len(set(clean_scores.values())) == 1, (
        f"engine configurations disagree on clean perplexity: {clean_scores}"
    )

    timings = {name: _time_q13(ev) for name, ev in evaluators.items()}
    base = timings["seed-equivalent"][0]
    rows = [
        [name, trials, f"{seconds:.3f}", f"{base / seconds:.2f}x"]
        for name, (seconds, trials) in timings.items()
    ]
    table(
        "bench_batching",
        ["engine configuration", "trials", "seconds (best)", "speedup"],
        rows,
        title=(
            "Q1.3 component characterization of opt-mini "
            f"({SIZING.lm_sequences} sequences x {len(BERS)} BERs, "
            "bit-identical scores across configurations)"
        ),
    )
    speedup = base / timings["batched"][0]
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"batched engine speedup {speedup:.2f}x below target {MIN_SPEEDUP}x"
        )
    return speedup


def test_batching_speedup(benchmark):
    benchmark.pedantic(_run, rounds=1, iterations=1)
