"""Fig. 4(k)(l) / Q2.2 — per-component resilience during the decode stage.

Paper finding: the sensitive components (O, Down) identified in the prefill
study remain the vulnerable ones during decode.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _common import evaluator, table

from repro.characterization.questions import q22_decode_components
from repro.errors.sites import Component, component_kind

BERS = (1e-3, 1e-2)
COMPONENTS = (Component.Q, Component.K, Component.SV, Component.O,
              Component.UP, Component.DOWN)


def test_q22_decode_component_resilience(benchmark):
    ev = evaluator("llama-mini", "xsum")

    records = []

    def run():
        records.extend(q22_decode_components(ev, components=COMPONENTS, bers=BERS))

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[r.label, f"{r.ber:.0e}", r.score, r.degradation] for r in records]
    table(
        "fig4kl_q22_decode_components",
        ["component", "BER", "ROUGE-1", "degradation"],
        rows,
        title="Fig 4(k)(l): decode-stage component resilience (LLaMA-style)",
    )
    worst = {}
    for r in records:
        worst[r.label] = max(worst.get(r.label, 0.0), r.degradation)
    sensitive = max(worst["O"], worst["Down"])
    resilient = max(worst["Q"], worst["K"], worst["SV"], worst["Up"])
    # O and Down remain the most vulnerable in decode (Insight 3's second half)
    assert sensitive >= resilient
    assert sensitive > 1.0
