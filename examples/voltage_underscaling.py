"""Energy-efficiency study: how low can the supply voltage go? (Fig. 9/Tab II)

Sweeps operating voltages for the whole protected model under six fault-
mitigation methods, finds each method's sweet spot (minimum energy subject
to the accuracy budget), then prints the per-component sweet-spot table.

Run:  python examples/voltage_underscaling.py
"""

from __future__ import annotations

from repro.core import ReaLMConfig, ReaLMPipeline, method_names
from repro.energy.sweetspot import find_sweet_spot
from repro.training import get_pretrained
from repro.utils import format_table

VOLTAGES = (0.84, 0.80, 0.76, 0.72, 0.68, 0.64, 0.60)


def main() -> None:
    bundle = get_pretrained("opt-mini")
    pipeline = ReaLMPipeline(
        bundle,
        ReaLMConfig(task="perplexity", budget=0.3, voltages=VOLTAGES),
    )

    print("Comparing methods across voltages (whole-model protection)...\n")
    comparison = pipeline.method_comparison(None, methods=method_names())

    rows = []
    for method, runs in comparison.items():
        points = [r.as_voltage_point() for r in runs]
        try:
            best = find_sweet_spot(points)
            rows.append(
                [method, f"{best.voltage:.2f}", best.energy_j * 1e6,
                 best.degradation, f"{100*best.recovery_rate:.1f}%"]
            )
        except ValueError:
            rows.append([method, "none feasible", "-", "-", "-"])
    print(format_table(
        ["method", "sweet-spot V", "energy (uJ)", "ppl degradation",
         "recovery rate"],
        rows,
        title="Fig 9-style sweet spots (min energy within 0.3 ppl budget)",
    ))

    print("\nPer-component sweet spots (Tab. II protocol)...\n")
    table_rows = []
    for row in pipeline.sweet_spot_table(list(bundle.config.components)):
        table_rows.append(
            [row.component, row.kind, f"{row.optimal_voltage:.2f}",
             f"{row.saving_pct:.1f}%"]
        )
    print(format_table(
        ["component", "kind", "optimal voltage", "energy saving vs prior art"],
        table_rows,
        title="Tab. II-style per-component savings",
    ))
    print(
        "\nResilient components ride deep voltage underscaling; sensitive "
        "ones (O, FC2) must recover like classical ABFT, limiting savings."
    )


if __name__ == "__main__":
    main()
