"""Quickstart: protect a quantized LLM against voltage-underscaling faults.

Loads (or trains, on first run) a tiny OPT-style LM, quantizes it to W8A8,
injects timing-fault bit flips at a bit-error rate corresponding to an
underscaled supply voltage, and shows what no protection, classical ABFT,
and ReaLM's statistical ABFT each do to perplexity and recovery cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.abft import ClassicalABFT
from repro.characterization.evaluator import ModelEvaluator
from repro.circuits import VoltageBerModel
from repro.core import ReaLMConfig, ReaLMPipeline
from repro.errors import BitFlipModel, ErrorInjector
from repro.training import get_pretrained
from repro.utils import format_table


def main() -> None:
    print("Loading the tiny OPT-style model (trains once, then cached)...")
    bundle = get_pretrained("opt-mini")
    voltage = 0.66
    ber = VoltageBerModel().ber(voltage)
    print(f"Operating voltage {voltage:.2f} V -> bit error rate {ber:.1e}\n")

    # The evaluator owns a calibrated W8A8 inference engine + the LM task.
    evaluator = ModelEvaluator(bundle, task="perplexity")
    clean = evaluator.clean_score

    def injector() -> ErrorInjector:
        return ErrorInjector(BitFlipModel(ber), seed=0)

    unprotected = evaluator.run(injector())

    classical = ClassicalABFT()
    with_classical = evaluator.run(injector(), classical)

    # ReaLM: characterize each component's resilience, fit critical regions,
    # and protect with the statistical decision rule.
    pipeline = ReaLMPipeline(bundle, ReaLMConfig(task="perplexity", budget=0.3))
    components = list(bundle.config.components)
    pipeline.calibrate(components)
    statistical = pipeline.protector_for("statistical-abft", components)
    with_ours = evaluator.run(injector(), statistical)

    rows = [
        ["fault-free", clean, "-", "-"],
        ["no protection", unprotected, 0, "0%"],
        ["classical ABFT", with_classical, classical.stats.recovered,
         f"{100*classical.stats.recovery_rate:.1f}%"],
        ["statistical ABFT (ReaLM)", with_ours, statistical.stats.recovered,
         f"{100*statistical.stats.recovery_rate:.1f}%"],
    ]
    print(format_table(
        ["configuration", "perplexity", "GEMMs recovered", "recovery rate"],
        rows,
        title=f"W8A8 LLM inference at {voltage:.2f} V",
    ))
    print(
        "\nReaLM keeps perplexity within budget while recovering far fewer "
        "GEMMs than classical ABFT — that recovery gap is the energy saving."
    )


if __name__ == "__main__":
    main()
