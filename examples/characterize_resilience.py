"""Resilience characterization walk-through (paper Sec. IV).

Reproduces the three insights on a tiny LLaMA-style model:

1. components followed by normalization (O, Down) are sensitive;
2. resilient components tolerate sporadic-large and frequent-small errors,
   while sensitive ones fail on few large errors;
3. the fitted critical region turns the grid into detector parameters.

Run:  python examples/characterize_resilience.py
"""

from __future__ import annotations

from repro.characterization import ModelEvaluator, q13_components, q14_magfreq
from repro.characterization.fitting import characterization_grid_points
from repro.abft.region import fit_critical_region
from repro.errors.sites import Component, component_kind
from repro.training import get_pretrained
from repro.utils import format_table


def main() -> None:
    bundle = get_pretrained("llama-mini")
    evaluator = ModelEvaluator(bundle, task="perplexity")
    print(f"Clean perplexity: {evaluator.clean_score:.3f}\n")

    # ---- Insight 1: per-component sensitivity -------------------------
    records = q13_components(evaluator, bers=(1e-4, 1e-3))
    worst: dict[str, float] = {}
    for record in records:
        worst[record.label] = max(worst.get(record.label, 0.0), record.degradation)
    rows = [
        [name, component_kind(Component(name)), degradation]
        for name, degradation in sorted(worst.items(), key=lambda kv: -kv[1])
    ]
    print(format_table(
        ["component", "kind", "worst ppl degradation"],
        rows,
        title="Insight 1: normalization-fed components are sensitive",
    ))

    # ---- Insight 2: magnitude/frequency trade-off ---------------------
    print()
    for component in (Component.V, Component.DOWN):
        grid = q14_magfreq(
            evaluator, component,
            mags=(2**8, 2**16, 2**24), freqs=(1, 16, 256),
        )
        rows = [
            [r.extra["mag"], r.extra["freq"], r.extra["msd"], r.degradation]
            for r in grid
        ]
        print(format_table(
            ["mag", "freq", "MSD", "ppl degradation"],
            rows,
            title=f"Insight 2: iso-MSD grid on {component.value} "
                  f"({component_kind(component)})",
        ))
        print()

        # ---- Fit the critical region (feeds statistical ABFT) --------
        points = characterization_grid_points(grid)
        region = fit_critical_region(points, budget=0.3,
                                     kind=component_kind(component))
        print(
            f"fitted critical region for {component.value}: "
            f"a={region.a:.2f}, b={region.b:.1f}, "
            f"theta_freq={region.theta_freq:.0f}\n"
        )


if __name__ == "__main__":
    main()
