"""Low-level tour: statistical ABFT on the systolic-array simulator (Fig. 7).

Runs a quantized GEMM through the tile-level WS/OS array simulation with
fault injection, shows the checksum hardware catching errors, the
statistical unit's countif decision, and the cycle accounting — including
the near-zero checksum latency overhead and the recovery cost the
statistical rule avoids.

Run:  python examples/systolic_array_abft.py
"""

from __future__ import annotations

import numpy as np

from repro.abft import ClassicalABFT, StatisticalABFT
from repro.abft.checksums import checksum_report
from repro.abft.region import CriticalRegion
from repro.errors import BitFlipModel, ErrorInjector, MagFreqModel
from repro.errors.sites import Component, GemmSite, Stage
from repro.quant.gemm import gemm_int32
from repro.systolic import OS, WS, Log2LinearUnit, StatisticalUnit, SystolicArray
from repro.utils import format_table
from repro.utils.seeding import derive_rng

SITE = GemmSite(layer=0, component=Component.K, stage=Stage.PREFILL)


def main() -> None:
    rng = derive_rng(0, "example")
    a = rng.integers(-127, 128, size=(64, 64)).astype(np.int8)
    b = rng.integers(-127, 128, size=(64, 64)).astype(np.int8)
    region = CriticalRegion(a=1.5, b=14.0, theta_freq=4.0, kind="resilient")

    # ---- per-column checksum statistics on one corrupted GEMM ---------
    y = gemm_int32(a, b)
    injector = ErrorInjector(MagFreqModel(mag=2**24, freq=3), seed=1)
    corrupted = injector.corrupt(y, SITE)
    report = checksum_report(a, b, corrupted)
    unit = StatisticalUnit(a=1.5, b=14.0, theta_freq=4.0, n_buffers=64)
    reading = unit.evaluate(report.diffs)
    print("One GEMM, 3 injected errors of magnitude 2^24:")
    print(f"  MSD               = {reading.msd}")
    print(f"  theta_mag (hw)    = {reading.theta_mag:.1f}"
          f"   (Log2LinearFunction: {Log2LinearUnit(1.5, 14.0).log2_hw(reading.msd):.2f} ~ log2 MSD)")
    print(f"  freq_eff (countif)= {reading.freq_eff}")
    print(f"  recover?          = {unit.should_recover(report.diffs)}"
          f"   (3 sporadic large errors <= theta_freq=4 -> tolerated)\n")

    # ---- tile-level execution with cycle accounting --------------------
    rows = []
    for dataflow, name in ((WS, "WS"), (OS, "OS")):
        array = SystolicArray(16, dataflow)
        _, plain = array.gemm(a, b)
        for label, protector in (
            ("classical", ClassicalABFT()),
            ("statistical", StatisticalABFT({"K": region})),
        ):
            inj = ErrorInjector(BitFlipModel(2e-5), seed=2)
            _, run = array.gemm(a, b, inj, protector, SITE)
            rows.append(
                [name, label, run.tiles, run.injected_tiles, run.recovered_tiles,
                 f"{100 * (run.compute_cycles / plain.compute_cycles - 1):.2f}%",
                 f"{100 * run.recovery_overhead:.2f}%"]
            )
    print(format_table(
        ["dataflow", "protection", "tiles", "faulty tiles", "recovered tiles",
         "checksum cycle overhead", "recovery cycle overhead"],
        rows,
        title="Tile-level ABFT on a 16x16 systolic array (BER 2e-5)",
    ))
    print(
        "\nThe checksum pipeline costs ~1 cycle per tile; statistical ABFT "
        "recovers only tiles whose error statistics enter the critical "
        "region, cutting recovery cycles vs classical ABFT."
    )


if __name__ == "__main__":
    main()
